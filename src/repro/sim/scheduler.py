"""Swappable event schedulers: the calendar queue and the name registry.

The kernel's default scheduler is the binary heap in
:mod:`repro.sim.event` (O(log n) per push/pop, every heap sift calling
``Event.__lt__`` — a Python-level comparison).  At city scale the queue
holds thousands of pending events and those comparisons become the
kernel's own overhead.  :class:`CalendarScheduler` is the classic
discrete-event answer (R. Brown, "Calendar Queues: A Fast O(1) Priority
Queue Implementation for the Simulation Event Set Problem", CACM 1988): a
ring of time-bucketed, individually sorted lists whose width and length
adapt to the live event population, giving amortized O(1) push/pop with a
handful of comparisons each.

Both schedulers implement the :class:`~repro.sim.event.Scheduler`
contract and are *order-identical* — the hypothesis oracle suite drives
them with the same randomized push/cancel/clear/pop workloads and asserts
identical pop sequences, and ``repro bench --check`` shows bit-identical
output digests on every figure benchmark under either kernel.

Selection::

    Simulator(scheduler="calendar")        # explicit, per simulator
    Simulator(scheduler=CalendarScheduler())   # bring your own instance
    REPRO_SCHEDULER=calendar python -m repro fig4   # process-wide default
    python -m repro --scheduler calendar fig4       # CLI sugar for the env

When to pick which: the heap is branch-light and unbeatable for small
queues (< a few hundred pending events); the calendar queue wins once the
pending set grows into the thousands and heap sift depth — and with it
the number of Python-level ``__lt__`` calls per operation — keeps
climbing.  See DESIGN.md §11 for the measured crossover.
"""

from __future__ import annotations

import os
from bisect import insort
from itertools import count
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import ConfigurationError, SimulationError
from repro.sim.event import (
    DEFAULT_PRIORITY,
    Event,
    EventQueue,
    HeapScheduler,
    Scheduler,
    scheduler_profile_key,
)

#: Environment knob naming the process-wide default scheduler.
SCHEDULER_ENV = "REPRO_SCHEDULER"

DEFAULT_SCHEDULER = "heap"


class CalendarScheduler(Scheduler):
    """A dynamically resized calendar queue of :class:`Event` objects.

    Events live in a ring of ``nbuckets`` buckets; an event at time ``t``
    belongs to ring slot ``int(t / width) % nbuckets``.  Each bucket is a
    list kept sorted by the full ``(time, priority, sequence)`` order via
    ``bisect.insort`` — events at the *same* instant always map to the
    same bucket, so the within-bucket sort is the only tiebreak that ever
    runs and FIFO ties stay exact.

    Dequeue scans ring slots in virtual-time order starting from the last
    pop's bucket, accepting a bucket head only when its own virtual bucket
    number ``int(t / width)`` equals the slot currently being scanned (an
    exact integer test, immune to the float drift of the textbook
    "bucket_top" accumulation; ``int(t / w)`` is weakly monotonic in ``t``
    because IEEE division is, so the first accepted head is the global
    minimum).  If a full ring pass finds nothing — the live set is sparse
    relative to the bucket width — it falls back to a direct search over
    all buckets and jumps the cursor there.

    The ring doubles when the stored population exceeds ``2 * nbuckets``
    and halves below ``nbuckets / 2`` (never under ``MIN_BUCKETS``); each
    resize drops lazily-cancelled ghosts wholesale and re-derives the
    bucket width from the live events' mean inter-event gap, keeping
    density near one event per bucket so both the in-bucket sort and the
    ring scan stay O(1) amortized.
    """

    name = "calendar"
    profile_key = staticmethod(scheduler_profile_key("CalendarScheduler"))

    #: Ring-size floor; also the size a fresh/cleared scheduler starts at.
    MIN_BUCKETS = 8

    #: Bucket-width multiplier over the mean inter-event gap.  Brown's
    #: experiments put the optimum near 3 for typical event-time jitter:
    #: wide enough that same-burst events share a bucket, narrow enough
    #: that a year's scan touches few occupied buckets.
    WIDTH_FACTOR = 3.0

    def __init__(
        self,
        bucket_width: Optional[float] = None,
        nbuckets: int = MIN_BUCKETS,
    ) -> None:
        if bucket_width is not None and bucket_width <= 0:
            raise ConfigurationError(
                f"calendar bucket_width must be positive, got {bucket_width}"
            )
        if nbuckets < 1:
            raise ConfigurationError(
                f"calendar nbuckets must be at least 1, got {nbuckets}"
            )
        self._counter = count()
        self._active = 0  # live events (the Scheduler contract's len)
        self._stored = 0  # physically stored, including cancelled ghosts
        self._width = float(bucket_width) if bucket_width else 1.0
        self._auto_width = bucket_width is None
        self._nbuckets = nbuckets
        self._buckets: List[List[Event]] = [[] for _ in range(nbuckets)]
        #: Absolute virtual bucket number the next dequeue scan starts at
        #: (slot = _virtual % _nbuckets; bucket numbers count whole years).
        self._virtual = 0
        #: Bucket located by the last peek, so the peek_time/pop pair the
        #: simulator loop issues per event scans the ring once, not twice.
        #: Invalidated by anything that could change the minimum from
        #: below (push/clear/resize); a cancelled head is detected by
        #: re-checking ``cancelled`` at pop time.
        self._head: Optional[List[Event]] = None

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Insert a new event and return it (so callers may cancel it)."""
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
            args=args,
        )
        event._queue = self
        self._head = None  # the new event may undercut the cached minimum
        virtual = int(time / self._width)
        bucket = self._buckets[virtual % self._nbuckets]
        if not bucket or bucket[-1] < event:
            bucket.append(event)  # tail fast-path: typical for fresh events
        else:
            insort(bucket, event)
        self._active += 1
        self._stored += 1
        if virtual < self._virtual:
            # Earlier than the scan cursor: rewind so the scan can't miss it.
            self._virtual = virtual
        if self._stored > 2 * self._nbuckets:
            self._resize(2 * self._nbuckets)
        return event

    def pop(self) -> Event:
        # Reuse the bucket peek_time just located when it is still valid:
        # pops clear the cache and pushes invalidate it, so the only
        # mutation that can sneak in between is a lazy cancel — which the
        # ``cancelled`` re-check catches (a cancel never makes a *smaller*
        # minimum appear, so a live cached head is still the global min).
        bucket = self._head
        if bucket is None or not bucket or bucket[0].cancelled:
            bucket = self._locate()
            if bucket is None:
                raise SimulationError("pop() from an empty event queue")
        self._head = None
        event = bucket.pop(0)
        event._queue = None
        self._active -= 1
        self._stored -= 1
        self._virtual = int(event.time / self._width)
        if self._stored < self._nbuckets // 2 and self._nbuckets > self.MIN_BUCKETS:
            self._resize(self._nbuckets // 2)
        return event

    def peek_time(self) -> Optional[float]:
        bucket = self._locate()
        self._head = bucket
        return bucket[0].time if bucket else None

    def clear(self) -> None:
        """Discard all pending events, severing every back-reference."""
        for bucket in self._buckets:
            for event in bucket:
                event._queue = None
            bucket.clear()
        self._active = 0
        self._stored = 0
        self._virtual = 0
        self._head = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _purge_head(self, bucket: List[Event]) -> None:
        """Drop leading cancelled ghosts (lazy cancellation, exact _stored)."""
        while bucket and bucket[0].cancelled:
            bucket[0]._queue = None
            del bucket[0]
            self._stored -= 1

    def _locate(self) -> Optional[List[Event]]:
        """Find the bucket whose head is the earliest live event.

        Advances the scan cursor to that event's bucket and returns the
        bucket (head guaranteed live) without removing anything, so
        :meth:`peek_time` and :meth:`pop` share the search.  Returns
        ``None`` when no live events remain.
        """
        if self._active == 0:
            return None
        width = self._width
        nbuckets = self._nbuckets
        buckets = self._buckets
        virtual = self._virtual
        for _ in range(nbuckets):
            bucket = buckets[virtual % nbuckets]
            while bucket:  # inline ghost purge: this loop is the hot path
                head = bucket[0]
                if not head.cancelled:
                    if int(head.time / width) == virtual:
                        self._virtual = virtual
                        return bucket
                    break
                head._queue = None
                del bucket[0]
                self._stored -= 1
            virtual += 1
        # Full ring scanned without a hit: the live set is sparse relative
        # to the bucket width.  Jump straight to the global minimum.
        best: Optional[List[Event]] = None
        for bucket in self._buckets:
            self._purge_head(bucket)
            if bucket and (best is None or bucket[0] < best[0]):
                best = bucket
        if best is None:  # every stored event was a cancelled ghost
            return None
        self._virtual = int(best[0].time / self._width)
        return best

    def _resize(self, nbuckets: int) -> None:
        """Rebuild the ring at a new size, purging ghosts and retuning width."""
        nbuckets = max(self.MIN_BUCKETS, nbuckets)
        self._head = None
        events: List[Event] = []
        for bucket in self._buckets:
            for event in bucket:
                if event.cancelled:
                    event._queue = None
                else:
                    events.append(event)
        events.sort()
        self._stored = len(events)
        if self._auto_width and len(events) >= 2:
            span = events[-1].time - events[0].time
            if span > 0.0:
                width = self.WIDTH_FACTOR * span / (len(events) - 1)
                # Guard degenerate spans (e.g. one outlier far away from a
                # same-instant burst) from collapsing the width to a
                # denormal that turns int(t / width) into huge integers.
                if width > 1e-9:
                    self._width = width
        self._nbuckets = nbuckets
        self._buckets = [[] for _ in range(nbuckets)]
        width = self._width
        for event in events:
            # Events arrive in global sorted order, so plain appends keep
            # every bucket sorted without re-running insort.
            self._buckets[int(event.time / width) % nbuckets].append(event)
        self._virtual = int(events[0].time / width) if events else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CalendarScheduler(live={self._active}, stored={self._stored}, "
            f"nbuckets={self._nbuckets}, width={self._width:g})"
        )


# ----------------------------------------------------------------------
# Registry / factory
# ----------------------------------------------------------------------
#: name -> zero-argument scheduler factory.
SCHEDULERS: Dict[str, Callable[[], Scheduler]] = {
    "heap": HeapScheduler,
    "calendar": CalendarScheduler,
}

SCHEDULER_NAMES = tuple(SCHEDULERS)


def configured_scheduler(default: str = DEFAULT_SCHEDULER) -> str:
    """The process-wide scheduler name, honouring ``REPRO_SCHEDULER``.

    Raises:
        ConfigurationError: when ``REPRO_SCHEDULER`` names no registered
            scheduler.
    """
    raw = os.environ.get(SCHEDULER_ENV)
    if not raw:
        return default
    name = raw.strip().lower()
    if name not in SCHEDULERS:
        raise ConfigurationError(
            f"{SCHEDULER_ENV} must be one of {', '.join(SCHEDULER_NAMES)}; "
            f"got {raw!r}"
        )
    return name


def resolve_scheduler(
    spec: Union[str, Scheduler, None] = None,
) -> Scheduler:
    """Build (or pass through) the scheduler a simulator should use.

    ``None`` resolves the ``REPRO_SCHEDULER`` env knob (default: heap); a
    string is looked up in the registry; a :class:`Scheduler` instance is
    used as-is (callers own its lifecycle — hand each simulator its own).

    Raises:
        ConfigurationError: on unknown names or unsupported spec types.
    """
    if spec is None:
        spec = configured_scheduler()
    if isinstance(spec, Scheduler):
        return spec
    if isinstance(spec, str):
        factory = SCHEDULERS.get(spec.strip().lower())
        if factory is None:
            raise ConfigurationError(
                f"unknown scheduler {spec!r}; "
                f"choose from {', '.join(SCHEDULER_NAMES)}"
            )
        return factory()
    raise ConfigurationError(
        f"scheduler must be a name ({', '.join(SCHEDULER_NAMES)}) or a "
        f"Scheduler instance, got {type(spec).__name__}"
    )
