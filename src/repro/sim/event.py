"""Event objects and the pending-event queue of the discrete-event kernel.

The queue is a binary heap keyed on ``(time, priority, sequence)``.  The
monotonically increasing sequence number guarantees a stable FIFO order for
events scheduled at the same instant with the same priority, which keeps
simulations fully deterministic for a given seed.

Cancellation is *lazy*: a cancelled event stays in the heap until popped,
but the queue's length accounting tracks only live events.  Every event
holds a back-reference to its queue, so :meth:`Event.cancel` keeps the
accounting exact no matter which of the two cancellation entry points
(``event.cancel()`` or ``queue.cancel(event)``) a caller uses, and
cancelling an event that already fired (or was cleared) is a no-op — it
must not deflate the live count.  ``Simulator.peak_queue_depth`` reads
``len(queue)``, so this accounting is what keeps the reported peak free of
cancelled-but-unpopped ghosts.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError

#: Default priority for events.  Lower values run earlier at equal times.
DEFAULT_PRIORITY = 0


class Event:
    """A single scheduled callback.

    Events compare by ``(time, priority, sequence)`` so they can live
    directly in a heap.  The callback and its arguments are excluded from
    ordering.  A plain slotted class (not a dataclass): ``__lt__`` runs on
    every heap sift of every schedule/pop, so it must not build tuples of
    all ordering fields per comparison.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[..., Any],
        args: tuple = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        #: The queue currently holding this event (None once popped/cleared).
        self._queue: Optional["EventQueue"] = None

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.sequence < other.sequence

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time}, priority={self.priority}, "
            f"sequence={self.sequence}, cancelled={self.cancelled})"
        )

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped.

        Idempotent, and exact about accounting: the owning queue's live
        count drops only if the event is still pending there.  Cancelling
        after the event fired (or after ``clear()``) changes nothing.
        """
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._active -= 1

    @property
    def active(self) -> bool:
        """Whether the event will still fire."""
        return not self.cancelled

    def fire(self) -> None:
        """Invoke the callback (the simulator calls this; tests may too)."""
        self.callback(*self.args)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Cancelled events are dropped lazily when popped; :meth:`__len__` reports
    only active events.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._active = 0

    def __len__(self) -> int:
        return self._active

    def __bool__(self) -> bool:
        return self._active > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Insert a new event and return it (so callers may cancel it)."""
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
            args=args,
        )
        event._queue = self
        heapq.heappush(self._heap, event)
        self._active += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest active event.

        Raises:
            SimulationError: if the queue holds no active events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                event._queue = None
                continue
            event._queue = None
            self._active -= 1
            return event
        raise SimulationError("pop() from an empty event queue")

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        event.cancel()

    def peek_time(self) -> Optional[float]:
        """Return the time of the next active event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)._queue = None
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Discard all pending events."""
        for event in self._heap:
            event._queue = None
        self._heap.clear()
        self._active = 0
