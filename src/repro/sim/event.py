"""Event objects and the pending-event schedulers of the discrete-event kernel.

Schedulers order events by ``(time, priority, sequence)``.  The
monotonically increasing sequence number guarantees a stable FIFO order for
events scheduled at the same instant with the same priority, which keeps
simulations fully deterministic for a given seed.

Cancellation is *lazy*: a cancelled event stays in the scheduler's storage
until popped, but the scheduler's length accounting tracks only live
events.  Every event holds a back-reference to its scheduler, so
:meth:`Event.cancel` keeps the accounting exact no matter which of the two
cancellation entry points (``event.cancel()`` or ``queue.cancel(event)``) a
caller uses, and cancelling an event that already fired (or was cleared) is
a no-op — it must not deflate the live count.  ``Simulator.peak_queue_depth``
reads ``len(queue)``, so this accounting is what keeps the reported peak
free of cancelled-but-unpopped ghosts.

This module holds the :class:`Scheduler` contract, the :class:`Event`
object, and the default binary-heap implementation (:class:`EventQueue`,
aliased as ``HeapScheduler``).  The calendar-queue implementation and the
name-based factory live in :mod:`repro.sim.scheduler`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError

#: Default priority for events.  Lower values run earlier at equal times.
DEFAULT_PRIORITY = 0


class Event:
    """A single scheduled callback.

    Events compare by ``(time, priority, sequence)`` so they can live
    directly in a heap.  The callback and its arguments are excluded from
    ordering.  A plain slotted class (not a dataclass): ``__lt__`` runs on
    every heap sift of every schedule/pop, so it must not build tuples of
    all ordering fields per comparison.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[..., Any],
        args: tuple = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        #: The scheduler currently holding this event (None once
        #: popped/cleared).
        self._queue: Optional["Scheduler"] = None

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.sequence < other.sequence

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time}, priority={self.priority}, "
            f"sequence={self.sequence}, cancelled={self.cancelled})"
        )

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped.

        Idempotent, and exact about accounting: the owning queue's live
        count drops only if the event is still pending there.  Cancelling
        after the event fired (or after ``clear()``) changes nothing.
        """
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._active -= 1

    @property
    def active(self) -> bool:
        """Whether the event will still fire."""
        return not self.cancelled

    def fire(self) -> None:
        """Invoke the callback (the simulator calls this; tests may too)."""
        self.callback(*self.args)


def scheduler_profile_key(name: str) -> Callable[[], None]:
    """A sentinel handler under which kernel profilers book scheduler time.

    The kernel profiler attributes time to *handler functions* and derives
    the subsystem label from the function's module.  Scheduler
    implementations expose one of these markers as ``profile_key`` so the
    profiled dispatch loop can attribute peek/pop time to a
    ``sim.scheduler`` subsystem of its own instead of hiding it in the
    loop's idle remainder.
    """

    def dispatch() -> None:  # pragma: no cover - never called, only keyed
        pass

    dispatch.__name__ = name
    dispatch.__qualname__ = f"{name}.dispatch"
    dispatch.__module__ = "repro.sim.scheduler"
    return dispatch


class Scheduler:
    """The pending-event scheduler contract of the simulation kernel.

    Implementations are *order-identical*: for any interleaving of pushes,
    cancellations, clears and pops, every implementation must yield the
    exact same pop sequence — the total order is ``(time, priority,
    sequence)`` with sequence numbers handed out in push order, so events
    scheduled at the same instant with the same priority pop FIFO.  The
    hypothesis oracle suite (``tests/properties/test_scheduler_oracle.py``)
    enforces this against the binary heap reference.

    Contract, beyond the method signatures:

    * **Lazy cancellation, exact accounting.** Cancelled events may stay in
      internal storage until popped (or reorganized away), but ``len()``
      counts only live events.  :meth:`Event.cancel` decrements the owning
      scheduler's ``_active`` count directly (a plain attribute, not a
      method, to keep the timer-heavy cancel path cheap), so every
      implementation must maintain ``_active`` as *the* live count.
    * **Back-reference severing.** :meth:`pop` and :meth:`clear` must set
      ``event._queue = None`` for every event they remove, so a later
      ``event.cancel()`` on a stale handle is a no-op and cannot deflate
      the live count of a refilled scheduler.
    * **Non-negative times.**  Callers only push ``time >= 0`` (the
      simulator's clock starts at zero and never schedules into the past).
    * ``pop()`` on a scheduler with no live events raises
      :class:`~repro.errors.SimulationError`; ``peek_time()`` returns
      ``None`` instead.

    Class attributes:
        name: Registry name used by ``REPRO_SCHEDULER`` / ``--scheduler``.
        profile_key: Sentinel handler for kernel-profiler attribution
            (see :func:`scheduler_profile_key`).
    """

    name = "abstract"
    profile_key = staticmethod(scheduler_profile_key("Scheduler"))

    _active: int

    def __len__(self) -> int:
        return self._active

    def __bool__(self) -> bool:
        return self._active > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Insert a new event and return it (so callers may cancel it)."""
        raise NotImplementedError

    def pop(self) -> Event:
        """Remove and return the earliest live event (severs its back-ref).

        Raises:
            SimulationError: if the scheduler holds no live events.
        """
        raise NotImplementedError

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        event.cancel()

    def peek_time(self) -> Optional[float]:
        """Return the time of the next live event, or ``None`` if empty."""
        raise NotImplementedError

    def clear(self) -> None:
        """Discard all pending events, severing every back-reference."""
        raise NotImplementedError


class EventQueue(Scheduler):
    """The default scheduler: a binary heap of :class:`Event` objects.

    O(log n) push/pop via :mod:`heapq`; the reference implementation the
    oracle suite measures every other scheduler against.  Cancelled events
    are dropped lazily when popped; :meth:`__len__` reports only active
    events.
    """

    name = "heap"
    profile_key = staticmethod(scheduler_profile_key("HeapScheduler"))

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._active = 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Insert a new event and return it (so callers may cancel it)."""
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
            args=args,
        )
        event._queue = self
        heapq.heappush(self._heap, event)
        self._active += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest active event.

        Raises:
            SimulationError: if the queue holds no active events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                event._queue = None
                continue
            event._queue = None
            self._active -= 1
            return event
        raise SimulationError("pop() from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Return the time of the next active event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)._queue = None
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Discard all pending events.

        Severs each cleared event's back-reference (the scheduler
        contract), so cancelling a stale handle afterwards cannot deflate
        the live count of a refilled queue.
        """
        for event in self._heap:
            event._queue = None
        self._heap.clear()
        self._active = 0


#: Alias matching the scheduler registry's naming scheme.
HeapScheduler = EventQueue
