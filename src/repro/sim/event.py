"""Event objects and the pending-event queue of the discrete-event kernel.

The queue is a binary heap keyed on ``(time, priority, sequence)``.  The
monotonically increasing sequence number guarantees a stable FIFO order for
events scheduled at the same instant with the same priority, which keeps
simulations fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError

#: Default priority for events.  Lower values run earlier at equal times.
DEFAULT_PRIORITY = 0


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events compare by ``(time, priority, sequence)`` so they can live directly
    in a heap.  The callback and its arguments are excluded from ordering.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """Whether the event will still fire."""
        return not self.cancelled

    def fire(self) -> None:
        """Invoke the callback (the simulator calls this; tests may too)."""
        self.callback(*self.args)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Cancelled events are dropped lazily when popped; :meth:`__len__` reports
    only active events.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._active = 0

    def __len__(self) -> int:
        return self._active

    def __bool__(self) -> bool:
        return self._active > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Insert a new event and return it (so callers may cancel it)."""
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
            args=args,
        )
        heapq.heappush(self._heap, event)
        self._active += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest active event.

        Raises:
            SimulationError: if the queue holds no active events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._active -= 1
            return event
        raise SimulationError("pop() from an empty event queue")

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._active -= 1

    def peek_time(self) -> Optional[float]:
        """Return the time of the next active event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Discard all pending events."""
        self._heap.clear()
        self._active = 0
