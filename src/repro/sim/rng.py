"""Seeded random-number streams, with an opt-in draw-site ledger.

Every stochastic component (medium loss, backoff jitter, workload placement,
mobility) draws from its own named stream derived from a single experiment
seed.  This keeps runs reproducible and lets components be re-ordered without
perturbing each other's draws.

Draw ledger
-----------

RNG-consumption skew — one side of a comparison drawing one extra (or one
fewer) random number — is the most common cause of two "identical" runs
diverging, and the hardest to see: every draw after the skew produces
different values, so downstream symptoms point everywhere except the cause.
With a :class:`RngLedger` installed (:func:`rng_ledger`), every stream the
registry creates is wrapped so each *primitive* draw (``random()`` /
``getrandbits()`` — the two entry points all derived draws such as
``uniform``/``randrange``/``choice``/``shuffle`` funnel through) is:

* counted per **draw site** — a lightweight ``stream@file:function:line``
  key resolved from the first stack frame outside the :mod:`random` module
  (resolved once per site and cached on the code object / line pair);
* folded into a per-stream **chained digest** of the drawn values, so two
  ledgers agree exactly when both sides drew the same values in the same
  order from each stream.

The ledger only *observes*: wrapped streams are seeded identically and
their Mersenne-Twister state advances exactly as an unwrapped
``random.Random`` would, so ledger-on runs are bit-identical to ledger-off
runs.  With no ledger installed, :meth:`RngRegistry.stream` hands out plain
``random.Random`` objects — zero per-draw cost, exactly the code that
shipped before the ledger existed.

Fault injection
---------------

``REPRO_RNG_PERTURB="<stream>:<index>"`` perturbs exactly one draw: the
``index``-th primitive draw of stream ``<stream>`` returns ``1 - v`` (for
``random()``) or a bit-flipped value (for ``getrandbits``).  This exists to
*test the determinism observatory itself* — ``repro diverge`` must localize
the injected skew to an exact event — and is checked once per stream
creation, so the knob costs nothing when unset.
"""

from __future__ import annotations

import os
import random
import sys
import zlib
from contextlib import contextmanager
from hashlib import blake2b
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

#: ``co_filename`` of the pure-Python :mod:`random` helpers (``uniform``,
#: ``randrange``, ...).  Frames from this file are internal plumbing, not
#: draw sites.
_RANDOM_PY = random.Random.uniform.__code__.co_filename

#: This module's own file — ledger wrapper frames, also not draw sites.
_SELF_PY = __file__


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable per-component seed from a master seed and a name."""
    return (master_seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF


class RngLedger:
    """Per-call-site draw counts plus per-stream chained value digests.

    Attributes:
        sites: ``"stream@file:function:line" -> primitive draw count``.
        draws: Total primitive draws observed across all streams.
    """

    def __init__(self) -> None:
        self.sites: Dict[str, int] = {}
        self.draws: int = 0
        #: stream name -> incremental digest of every value drawn from it.
        self._stream_hashes: Dict[str, "blake2b"] = {}
        #: (code object, lineno) -> resolved site label (per-site, cached).
        self._site_cache: Dict[Tuple[object, int], str] = {}

    # ------------------------------------------------------------------
    # Observation (called by _LedgerRandom on every primitive draw)
    # ------------------------------------------------------------------
    def _note(self, stream: str, value: object) -> None:
        # Walk out of random.py / this module to the real call site.
        frame = sys._getframe(2)
        while frame is not None and frame.f_code.co_filename in (
            _RANDOM_PY,
            _SELF_PY,
        ):
            frame = frame.f_back
        if frame is None:  # pragma: no cover - only direct random.py entry
            site = f"{stream}@(unknown)"
        else:
            cache_key = (frame.f_code, frame.f_lineno)
            site = self._site_cache.get(cache_key)
            if site is None:
                code = frame.f_code
                site = (
                    f"{stream}@{os.path.basename(code.co_filename)}:"
                    f"{code.co_name}:{frame.f_lineno}"
                )
                self._site_cache[cache_key] = site
        self.sites[site] = self.sites.get(site, 0) + 1
        self.draws += 1
        digest = self._stream_hashes.get(stream)
        if digest is None:
            digest = self._stream_hashes[stream] = blake2b(digest_size=16)
        digest.update(repr(value).encode("ascii", "backslashreplace"))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stream_digests(self) -> Dict[str, str]:
        """``stream name -> hex chained digest`` of all values drawn."""
        return {
            name: digest.copy().hexdigest()
            for name, digest in self._stream_hashes.items()
        }

    def snapshot(self) -> Dict[str, object]:
        """JSON-able form: draw totals, per-site counts, stream digests."""
        return {
            "draws": self.draws,
            "sites": dict(sorted(self.sites.items())),
            "streams": self.stream_digests(),
        }


def diff_ledgers(
    a: Dict[str, object], b: Dict[str, object]
) -> List[Dict[str, object]]:
    """Every draw site whose count differs between two ledger snapshots.

    Sites are returned in sorted key order (deterministic), each as
    ``{"site": ..., "a": count, "b": count}``; a site missing from one
    side reports count 0 there.  The *first* entry is the usual suspect —
    the earliest-sorted site with consumption skew.
    """
    sites_a: Dict[str, int] = dict(a.get("sites", {}))  # type: ignore[arg-type]
    sites_b: Dict[str, int] = dict(b.get("sites", {}))  # type: ignore[arg-type]
    skews: List[Dict[str, object]] = []
    for site in sorted(set(sites_a) | set(sites_b)):
        count_a = int(sites_a.get(site, 0))
        count_b = int(sites_b.get(site, 0))
        if count_a != count_b:
            skews.append({"site": site, "a": count_a, "b": count_b})
    return skews


class _LedgerRandom(random.Random):
    """A ``random.Random`` that reports every primitive draw to a ledger.

    Only observes: the underlying Mersenne-Twister state advances exactly
    as the base class's would for the same seed, so wrapping never changes
    the values components draw.
    """

    def __init__(self, seed: int, stream: str, ledger: RngLedger) -> None:
        self._stream = stream
        self._ledger = ledger
        super().__init__(seed)

    def random(self) -> float:
        value = super().random()
        self._ledger._note(self._stream, value)
        return value

    def getrandbits(self, k: int) -> int:
        value = super().getrandbits(k)
        self._ledger._note(self._stream, value)
        return value


class _PerturbedRandom(random.Random):
    """Fault injection: flips exactly one primitive draw of one stream.

    Composes with the ledger (the perturbed *value* is what gets drawn,
    counted, and digested — exactly what a real divergence looks like).
    """

    def __init__(
        self,
        seed: int,
        perturb_index: int,
        stream: str = "",
        ledger: Optional[RngLedger] = None,
    ) -> None:
        self._index = 0
        self._perturb_index = perturb_index
        self._stream = stream
        self._ledger = ledger
        super().__init__(seed)

    def random(self) -> float:
        value = super().random()
        if self._index == self._perturb_index:
            value = 1.0 - value
        self._index += 1
        if self._ledger is not None:
            self._ledger._note(self._stream, value)
        return value

    def getrandbits(self, k: int) -> int:
        value = super().getrandbits(k)
        if self._index == self._perturb_index:
            value ^= 1
        self._index += 1
        if self._ledger is not None:
            self._ledger._note(self._stream, value)
        return value


# ----------------------------------------------------------------------
# Process-wide ledger installation (mirrors the trace-sink registry)
# ----------------------------------------------------------------------
_LEDGERS: List[RngLedger] = []


def install_rng_ledger(ledger: RngLedger) -> RngLedger:
    """Ledger every stream created from now on."""
    _LEDGERS.append(ledger)
    return ledger


def remove_rng_ledger(ledger: RngLedger) -> None:
    """Stop wrapping new streams through ``ledger``."""
    try:
        _LEDGERS.remove(ledger)
    except ValueError:
        pass


def active_rng_ledger() -> Optional[RngLedger]:
    """The ledger new streams report to, or ``None``."""
    return _LEDGERS[-1] if _LEDGERS else None


@contextmanager
def rng_ledger() -> Iterator[RngLedger]:
    """Scope a draw ledger over every stream created inside the block."""
    ledger = install_rng_ledger(RngLedger())
    try:
        yield ledger
    finally:
        remove_rng_ledger(ledger)


def _parse_perturbation(raw: str) -> Tuple[str, int]:
    """``"stream:index"`` from ``REPRO_RNG_PERTURB``; fail fast otherwise."""
    stream, sep, index_raw = raw.rpartition(":")
    if not sep or not stream:
        raise ConfigurationError(
            f"REPRO_RNG_PERTURB must be '<stream>:<draw-index>', got {raw!r}"
        )
    try:
        index = int(index_raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_RNG_PERTURB must be '<stream>:<draw-index>', got {raw!r}"
        ) from None
    if index < 0:
        raise ConfigurationError(
            f"REPRO_RNG_PERTURB draw index must be >= 0, got {raw!r}"
        )
    return stream, index


class RngRegistry:
    """A factory of independent, named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The wrapper (if any) is chosen at creation time: a plain
        ``random.Random`` normally, a ledgered one while a
        :class:`RngLedger` is installed, a perturbed one when
        ``REPRO_RNG_PERTURB`` names this stream.  All three produce the
        identical value sequence for a given seed — except the perturbed
        stream's single flipped draw, which is the point.
        """
        stream = self._streams.get(name)
        if stream is None:
            seed = derive_seed(self.master_seed, name)
            perturb = os.environ.get("REPRO_RNG_PERTURB")
            ledger = active_rng_ledger()
            if perturb:
                target, index = _parse_perturbation(perturb)
                if target == name:
                    stream = _PerturbedRandom(
                        seed, index, stream=name, ledger=ledger
                    )
            if stream is None:
                if ledger is not None:
                    stream = _LedgerRandom(seed, name, ledger)
                else:
                    stream = random.Random(seed)
            self._streams[name] = stream
        return stream

    def reset(self) -> None:
        """Forget all streams; subsequent calls recreate them from scratch."""
        self._streams.clear()
