"""Seeded random-number streams.

Every stochastic component (medium loss, backoff jitter, workload placement,
mobility) draws from its own named stream derived from a single experiment
seed.  This keeps runs reproducible and lets components be re-ordered without
perturbing each other's draws.
"""

from __future__ import annotations

import random
import zlib


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable per-component seed from a master seed and a name."""
    return (master_seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF


class RngRegistry:
    """A factory of independent, named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def reset(self) -> None:
        """Forget all streams; subsequent calls recreate them from scratch."""
        self._streams.clear()
