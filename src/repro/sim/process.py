"""Timer helpers layered on top of the simulator.

These wrap the raw event API into the two patterns protocol code needs:
one-shot restartable timers (ack timeouts, round-silence detection) and
periodic tasks (mobility steps, controller polling).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.event import Event
from repro.sim.simulator import Simulator


class Timer:
    """A one-shot timer that can be started, restarted and cancelled.

    Restarting an armed timer cancels the pending expiration first, so the
    callback fires at most once per :meth:`start`.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """Whether the timer is currently counting down."""
        return self._event is not None and self._event.active

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTask:
    """Invokes a callback every ``interval`` seconds until stopped."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._event: Optional[Event] = None
        self._running = False

    @property
    def running(self) -> bool:
        """Whether the task is currently scheduled."""
        return self._running

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin ticking; first tick after ``initial_delay`` (or interval)."""
        if self._running:
            return
        self._running = True
        delay = self._interval if initial_delay is None else initial_delay
        self._event = self._sim.schedule(delay, self._tick)

    def stop(self) -> None:
        """Stop ticking; safe to call when already stopped."""
        self._running = False
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._event = self._sim.schedule(self._interval, self._tick)
        self._callback()
