"""Devices: the per-node composition of radio stack, store and engines."""

from repro.node.cache import CachePolicyConfig, ChunkCache, EvictionStrategy
from repro.node.config import DeviceConfig, ProtocolConfig
from repro.node.device import Device

__all__ = [
    "CachePolicyConfig",
    "ChunkCache",
    "Device",
    "DeviceConfig",
    "EvictionStrategy",
    "ProtocolConfig",
]
