"""A PDS device: radio stack + data store + protocol engines.

Every node in the network runs the same ``Device``; consumers additionally
drive sessions (:mod:`repro.core.consumer`) on top of their device.  The
device dispatches incoming payloads to the matching engine and exposes the
producer-side API (:meth:`add_item`, :meth:`add_metadata`) plus listener
hooks used by sessions and metrics.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.core.cdi import CdiTable
from repro.core.discovery import DiscoveryEngine
from repro.core.interest import InterestData, InterestEngine, InterestQuery
from repro.core.mdr import MdrEngine
from repro.core.messages import (
    CdiQuery,
    CdiResponse,
    ChunkQuery,
    ChunkResponse,
    DiscoveryQuery,
    DiscoveryResponse,
    MdrQuery,
    PdsMessage,
)
from repro.core.retrieval import CdiEngine, ChunkEngine
from repro.data.descriptor import DataDescriptor
from repro.data.item import Chunk, DataItem
from repro.data.store import DataStore
from repro.net.faces import BroadcastFace
from repro.net.medium import BroadcastMedium
from repro.net.message import Frame
from repro.net.topology import NodeId
from repro.node.cache import ChunkCache
from repro.node.config import DeviceConfig
from repro.sim.simulator import Simulator

#: Listener signatures.
MetadataListener = Callable[[DataDescriptor], None]
ChunkListener = Callable[[Chunk], None]
ResponseListener = Callable[[PdsMessage], None]


class Device:
    """One participating edge device."""

    def __init__(
        self,
        sim: Simulator,
        medium: BroadcastMedium,
        node_id: NodeId,
        rng: random.Random,
        config: Optional[DeviceConfig] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.rng = rng
        self.config = config if config is not None else DeviceConfig()
        self.store = DataStore(
            clock=lambda: sim.now,
            metadata_ttl=self.config.protocol.metadata_ttl_s,
        )
        self.cdi_table = CdiTable(clock=lambda: sim.now)
        self.cache = ChunkCache(
            self.store, clock=lambda: sim.now, config=self.config.cache
        )
        self.face = BroadcastFace(
            sim,
            medium,
            node_id,
            rng,
            radio_config=self.config.radio,
            bucket_config=self.config.bucket,
            reliability_config=self.config.reliability,
            use_leaky_bucket=self.config.use_leaky_bucket,
        )
        self.face.on_receive(self._dispatch)

        self.discovery = DiscoveryEngine(self)
        self.cdi = CdiEngine(self)
        self.chunks = ChunkEngine(self)
        self.mdr = MdrEngine(self)
        self.interest = InterestEngine(self)

        self.metadata_listeners: List[MetadataListener] = []
        self.chunk_listeners: List[ChunkListener] = []
        self.response_listeners: List[ResponseListener] = []
        self.alive = True

    # ------------------------------------------------------------------
    # Producer-side API
    # ------------------------------------------------------------------
    def add_item(self, item: DataItem) -> None:
        """Produce a data item locally: store all chunks + metadata.

        Locally produced chunks are pinned — never evicted by the cache
        policy.  The item's metadata is pushed to matching subscriptions.
        """
        for chunk in item.chunks():
            self.cache.pin(chunk)
        self.discovery.on_local_data(item.descriptor)

    def add_chunk(self, chunk: Chunk) -> None:
        """Hold one chunk of an item (partial copies, workload setup)."""
        self.cache.pin(chunk)

    def add_metadata(self, descriptor: DataDescriptor) -> None:
        """Hold a metadata entry with payload present locally.

        Used by workloads where the entry itself *is* the datum of
        interest (pure discovery experiments).  Newly produced data is
        pushed to any matching lingering queries (subscriptions).
        """
        is_new = self.store.insert_metadata(descriptor, has_payload=True)
        if is_new:
            self.discovery.on_local_data(descriptor)

    # ------------------------------------------------------------------
    # Caching (shared by engines; fires listeners on novelty)
    # ------------------------------------------------------------------
    def cache_metadata(self, descriptor: DataDescriptor) -> bool:
        """Opportunistically cache a metadata entry heard on the air."""
        is_new = self.store.insert_metadata(descriptor, has_payload=False)
        if is_new:
            for listener in self.metadata_listeners:
                listener(descriptor)
        return is_new

    def cache_chunk(self, chunk: Chunk, pin: bool = False) -> bool:
        """Opportunistically cache a chunk payload heard on the air.

        Subject to the configured cache policy (capacity + eviction);
        listeners fire only when the payload was actually new and stored.
        ``pin=True`` bypasses the policy — used for chunks this device
        explicitly requested, which must never be evicted mid-retrieval.
        """
        if self.store.has_chunk(chunk.descriptor):
            if pin:
                self.cache.pin(chunk)
            return False
        if pin:
            self.cache.pin(chunk)
        elif not self.cache.offer(chunk):
            return False
        for listener in self.chunk_listeners:
            listener(chunk)
        return True

    # ------------------------------------------------------------------
    def may_forward_flood(self, hop_count: int) -> bool:
        """Flood-scope policy: hop limit (§III-A) + gossip probability
        (§VII broadcast-storm mitigation).  Both default to unbounded /
        always-forward as in the paper's evaluation."""
        protocol = self.config.protocol
        if (
            protocol.max_query_hops is not None
            and hop_count >= protocol.max_query_hops
        ):
            return False
        if protocol.flood_probability >= 1.0:
            return True
        return self.rng.random() < protocol.flood_probability

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, frame: Frame, addressed: bool) -> None:
        if not self.alive:
            return
        payload = frame.payload
        if isinstance(payload, DiscoveryQuery):
            self.discovery.handle_query(payload, addressed)
        elif isinstance(payload, DiscoveryResponse):
            self._notify_response(payload, addressed)
            self.discovery.handle_response(payload, addressed)
        elif isinstance(payload, CdiQuery):
            self.cdi.handle_query(payload, addressed)
        elif isinstance(payload, CdiResponse):
            self._notify_response(payload, addressed)
            self.cdi.handle_response(payload, addressed)
        elif isinstance(payload, ChunkQuery):
            self.chunks.handle_query(payload, addressed)
        elif isinstance(payload, ChunkResponse):
            self._notify_response(payload, addressed)
            self.chunks.handle_response(payload, addressed)
            self.mdr.handle_response(payload, addressed)
        elif isinstance(payload, MdrQuery):
            self.mdr.handle_query(payload, addressed)
        elif isinstance(payload, InterestQuery):
            self.interest.handle_query(payload, addressed)
        elif isinstance(payload, InterestData):
            self._notify_response(payload, addressed)
            self.interest.handle_response(payload, addressed)

    def _notify_response(self, payload: PdsMessage, addressed: bool) -> None:
        if addressed:
            for listener in self.response_listeners:
                listener(payload)

    # ------------------------------------------------------------------
    def observe_state(self) -> dict:
        """Flight-recorder view of this device's protocol state.

        Composes the strictly read-only ``observe_state()`` views of every
        table along the stack; sampling a device never purges, emits, or
        consumes randomness.
        """
        return {
            "lqt": {
                "disc": self.discovery.lqt.observe_state(),
                "cdi": self.cdi.observe_state(),
                "chunk": self.chunks.observe_state(),
                "mdr": self.mdr.lqt.observe_state(),
                "pit": self.interest.pit.observe_state(),
            },
            "cdi": self.cdi_table.observe_state(),
            "store": self.store.observe_state(),
            "face": self.face.observe_state(),
        }

    def leave(self) -> None:
        """The user walks away: tear down the stack (data leaves too)."""
        self.alive = False
        self.face.shutdown()

    def __repr__(self) -> str:
        return f"Device(id={self.node_id}, metadata={self.store.metadata_count()})"
