"""Chunk caching policies (§VII future work).

The paper caches *all* metadata (tiny) but notes that data chunks "cannot
always be cached due to limited storage capacity" and defers popularity-
and resource-aware policies to future work.  This module implements that
extension: a bounded chunk cache with three eviction strategies.

Locally produced chunks (inserted via :meth:`Device.add_item` /
:meth:`Device.add_chunk`) are *pinned* — a device never evicts its own
data, only opportunistically cached copies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.data.descriptor import DataDescriptor
from repro.data.item import Chunk
from repro.data.store import DataStore
from repro.errors import ConfigurationError


class EvictionStrategy(enum.Enum):
    """How to choose a victim when the cache is full."""

    #: Least recently used (by cache/serve time).
    LRU = "lru"
    #: Fewest requests served (the paper's suggested popularity signal).
    LEAST_POPULAR = "least_popular"
    #: Largest chunk first (frees space fastest).
    LARGEST = "largest"


@dataclass(frozen=True)
class CachePolicyConfig:
    """Bounded-cache knobs.

    Attributes:
        capacity_bytes: Maximum bytes of *cached* (non-pinned) chunks;
            ``None`` means unbounded (the paper's evaluation setting).
        strategy: Eviction strategy when over capacity.
    """

    capacity_bytes: Optional[int] = None
    strategy: EvictionStrategy = EvictionStrategy.LRU

    def __post_init__(self) -> None:
        if self.capacity_bytes is not None and self.capacity_bytes < 0:
            raise ConfigurationError("cache capacity must be >= 0")


class ChunkCache:
    """Eviction manager layered over a device's :class:`DataStore`."""

    def __init__(
        self,
        store: DataStore,
        clock: Callable[[], float],
        config: Optional[CachePolicyConfig] = None,
    ) -> None:
        self.store = store
        self.clock = clock
        self.config = config if config is not None else CachePolicyConfig()
        self._pinned: set = set()
        self._cached_bytes = 0
        self._last_used: Dict[DataDescriptor, float] = {}
        self._popularity: Dict[DataDescriptor, int] = {}
        self.evictions = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    def pin(self, chunk: Chunk) -> None:
        """Store a locally produced chunk; never evicted."""
        self._pinned.add(chunk.descriptor)
        self.store.insert_chunk(chunk)

    def offer(self, chunk: Chunk) -> bool:
        """Try to cache an opportunistically received chunk.

        Returns:
            True if the chunk is now stored (fresh or already present).
        """
        descriptor = chunk.descriptor
        if self.store.has_chunk(descriptor):
            self.touch(descriptor)
            return True
        capacity = self.config.capacity_bytes
        if capacity is not None:
            if chunk.size > capacity:
                self.rejected += 1
                return False
            self._evict_until(capacity - chunk.size)
            if self._cached_bytes + chunk.size > capacity:
                self.rejected += 1
                return False
        self.store.insert_chunk(chunk)
        self._cached_bytes += chunk.size
        self._last_used[descriptor] = self.clock()
        self._popularity.setdefault(descriptor, 0)
        return True

    def touch(self, descriptor: DataDescriptor) -> None:
        """Record a use (serve/request) of a stored chunk."""
        if descriptor in self._last_used:
            self._last_used[descriptor] = self.clock()
        self._popularity[descriptor] = self._popularity.get(descriptor, 0) + 1

    # ------------------------------------------------------------------
    @property
    def cached_bytes(self) -> int:
        """Bytes of evictable (non-pinned) chunks currently stored."""
        return self._cached_bytes

    def _evict_until(self, budget: int) -> None:
        while self._cached_bytes > budget:
            victim = self._pick_victim()
            if victim is None:
                return
            chunk = self.store.get_chunk(victim)
            self.store.remove_chunk(victim)
            self._last_used.pop(victim, None)
            self._popularity.pop(victim, None)
            if chunk is not None:
                self._cached_bytes -= chunk.size
            self.evictions += 1

    def _pick_victim(self) -> Optional[DataDescriptor]:
        candidates: List[DataDescriptor] = [
            d for d in self._last_used if d not in self._pinned
        ]
        if not candidates:
            return None
        strategy = self.config.strategy
        if strategy is EvictionStrategy.LRU:
            return min(candidates, key=lambda d: self._last_used[d])
        if strategy is EvictionStrategy.LEAST_POPULAR:
            return min(
                candidates,
                key=lambda d: (self._popularity.get(d, 0), self._last_used[d]),
            )
        # LARGEST
        def size_of(descriptor: DataDescriptor) -> int:
            chunk = self.store.get_chunk(descriptor)
            return chunk.size if chunk is not None else 0

        return max(candidates, key=size_of)
