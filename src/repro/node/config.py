"""Configuration dataclasses for devices and the PDS protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.net.leaky_bucket import LeakyBucketConfig
from repro.net.radio import RadioConfig
from repro.net.reliability import ReliabilityConfig
from repro.node.cache import CachePolicyConfig


@dataclass(frozen=True)
class ProtocolConfig:
    """PDS protocol knobs shared by PDD and PDR.

    Attributes:
        query_ttl_s: Lifetime of a lingering query in the LQT (§III-A).
        metadata_ttl_s: Expiration of metadata entries cached without
            payload (§II-C).
        cdi_ttl_s: Expiration of CDI routing entries (§IV-A).
        max_response_payload_bytes: Metadata responses are packed into
            frames no larger than this (one UDP datagram).
        redundancy_detection: Whether queries carry Bloom filters and
            nodes rewrite messages en-route (§III-B-2).  Disabled for the
            single-round ablations.
        bloom_false_positive_rate: Target FP rate when sizing per-round
            Bloom filters (§V-3).
        bloom_max_bits: Cap on the per-round filter size (§V-3).
        cache_overheard_chunks: Whether non-addressed nodes cache chunk
            payloads they overhear.
        cache_relayed_chunks: Whether relays cache chunk payloads they
            forward.
        max_query_hops: Optional flood-scope limit ("such limiting can be
            achieved easily with a hop counter", §III-A).  ``None`` floods
            the whole (small) network as in the paper's evaluation.
        flood_probability: Probabilistic-forwarding knob for broadcast
            storm mitigation (§VII cites gossip flooding); 1.0 = always
            forward, as in the paper.
    """

    query_ttl_s: float = 30.0
    metadata_ttl_s: Optional[float] = 120.0
    cdi_ttl_s: float = 30.0
    max_response_payload_bytes: int = 1400
    redundancy_detection: bool = True
    bloom_false_positive_rate: float = 0.01
    bloom_max_bits: int = 32768
    cache_overheard_chunks: bool = True
    cache_relayed_chunks: bool = True
    max_query_hops: Optional[int] = None
    flood_probability: float = 1.0

    def __post_init__(self) -> None:
        if self.query_ttl_s <= 0:
            raise ConfigurationError("query_ttl_s must be positive")
        if self.max_response_payload_bytes < 64:
            raise ConfigurationError("max_response_payload_bytes too small")
        if self.max_query_hops is not None and self.max_query_hops < 0:
            raise ConfigurationError("max_query_hops must be >= 0")
        if not 0.0 <= self.flood_probability <= 1.0:
            raise ConfigurationError("flood_probability must be in [0, 1]")


@dataclass(frozen=True)
class DeviceConfig:
    """Full per-device stack configuration."""

    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    radio: RadioConfig = field(default_factory=RadioConfig)
    bucket: LeakyBucketConfig = field(default_factory=LeakyBucketConfig)
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)
    cache: CachePolicyConfig = field(default_factory=CachePolicyConfig)
    use_leaky_bucket: bool = True
