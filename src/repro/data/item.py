"""Data items and chunking (§II-A, §II-B).

A :class:`DataItem` is either a small self-contained datum (e.g. one
pollution sample) or a large object (e.g. a video clip) divided into
fixed-size :class:`Chunk` objects.  Payload bytes are not materialised —
only sizes matter to the simulation — but payload identity is tracked via
the descriptor so correctness (recall) can be measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.data import attributes as attr
from repro.data.descriptor import DataDescriptor
from repro.errors import DataModelError

#: The chunk size used throughout the paper's evaluation (§VI-A).
DEFAULT_CHUNK_SIZE = 256 * 1024


@dataclass(frozen=True)
class Chunk:
    """One chunk of a data item.

    Attributes:
        descriptor: The chunk descriptor (item descriptor + chunk_id).
        size: Payload size in bytes.
    """

    descriptor: DataDescriptor
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise DataModelError(f"chunk size must be >= 0, got {self.size}")
        if not self.descriptor.is_chunk:
            raise DataModelError("chunk descriptor must carry a chunk_id attribute")

    @property
    def chunk_id(self) -> int:
        chunk_id = self.descriptor.chunk_id
        assert chunk_id is not None
        return chunk_id

    @property
    def item_descriptor(self) -> DataDescriptor:
        """Descriptor of the parent item."""
        return self.descriptor.item_descriptor()


class DataItem:
    """A data item plus its division into chunks.

    Small items are represented as a single chunk whose size equals the item
    size; the descriptor then carries ``total_chunks = 1``.
    """

    def __init__(
        self,
        descriptor: DataDescriptor,
        size: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if size <= 0:
            raise DataModelError(f"item size must be positive, got {size}")
        if chunk_size <= 0:
            raise DataModelError(f"chunk size must be positive, got {chunk_size}")
        total_chunks = max(1, math.ceil(size / chunk_size))
        # The externally visible descriptor advertises the chunk count so a
        # consumer learns how many chunks to retrieve from metadata alone.
        self.descriptor = descriptor.with_attributes(**{attr.TOTAL_CHUNKS: total_chunks})
        self.size = size
        self.chunk_size = chunk_size
        self.total_chunks = total_chunks

    def chunks(self) -> List[Chunk]:
        """All chunks of this item, in chunk-id order."""
        result = []
        remaining = self.size
        for chunk_id in range(self.total_chunks):
            size = min(self.chunk_size, remaining)
            remaining -= size
            result.append(Chunk(self.descriptor.chunk_descriptor(chunk_id), size))
        return result

    def chunk(self, chunk_id: int) -> Chunk:
        """The single chunk with the given id."""
        if not 0 <= chunk_id < self.total_chunks:
            raise DataModelError(
                f"chunk_id {chunk_id} out of range [0, {self.total_chunks})"
            )
        last = self.total_chunks - 1
        if chunk_id == last:
            size = self.size - self.chunk_size * last
        else:
            size = self.chunk_size
        return Chunk(self.descriptor.chunk_descriptor(chunk_id), size)

    def __repr__(self) -> str:
        return (
            f"DataItem({self.descriptor!r}, size={self.size}, "
            f"chunks={self.total_chunks})"
        )


def make_item(
    namespace: str,
    data_type: str,
    name: str,
    size: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    **extra,
) -> DataItem:
    """Convenience constructor for a named data item."""
    descriptor = DataDescriptor(
        {
            attr.NAMESPACE: namespace,
            attr.DATA_TYPE: data_type,
            attr.NAME: name,
            **extra,
        }
    )
    return DataItem(descriptor, size, chunk_size)
