"""Data model: descriptors, predicates, items, chunks and the data store."""

from repro.data import attributes
from repro.data.attributes import AttributeValue
from repro.data.descriptor import DataDescriptor, make_descriptor
from repro.data.item import DEFAULT_CHUNK_SIZE, Chunk, DataItem, make_item
from repro.data.predicate import (
    Predicate,
    QuerySpec,
    Relation,
    between,
    eq,
    exists,
    ge,
    gt,
    is_in,
    le,
    lt,
    ne,
    prefix,
    within_radius,
)
from repro.data.store import DataStore, MetadataRecord

__all__ = [
    "AttributeValue",
    "Chunk",
    "DataDescriptor",
    "DataItem",
    "DataStore",
    "DEFAULT_CHUNK_SIZE",
    "MetadataRecord",
    "Predicate",
    "QuerySpec",
    "Relation",
    "attributes",
    "between",
    "eq",
    "exists",
    "ge",
    "gt",
    "is_in",
    "le",
    "lt",
    "make_descriptor",
    "make_item",
    "ne",
    "prefix",
    "within_radius",
]
