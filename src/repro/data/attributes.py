"""Attribute values used by data descriptors.

The paper (§II-B) defines a descriptor as a set of named attributes of
primitive types (string, integer, float, Unix time).  We model Unix times as
floats; the :func:`wire_size` helper gives the byte cost of an attribute as
carried in messages, used by the overhead accounting.
"""

from __future__ import annotations

from typing import Union

from repro.errors import DataModelError

#: The primitive value types an attribute may take.
AttributeValue = Union[str, int, float, bool]

#: Well-known attribute names used throughout the system (§II-B, §III, §IV).
NAMESPACE = "namespace"
DATA_TYPE = "data_type"
TIME = "time"
LOCATION_X = "location_x"
LOCATION_Y = "location_y"
TOTAL_CHUNKS = "total_chunks"
CHUNK_ID = "chunk_id"
NAME = "name"

#: Reserved namespace for protocol-internal data types (§III-A, §IV-A).
SYSTEM_NAMESPACE = "system"
METADATA_TYPE = "metadata"
CDI_TYPE = "cdi"

_NUMERIC_TYPES = (int, float)


def validate_value(value: object) -> AttributeValue:
    """Check that ``value`` is a supported primitive and return it.

    Raises:
        DataModelError: for unsupported types (lists, dicts, None, ...).
    """
    if isinstance(value, bool) or isinstance(value, (str, int, float)):
        return value
    raise DataModelError(
        f"attribute values must be str/int/float/bool, got {type(value).__name__}"
    )


def values_comparable(left: AttributeValue, right: AttributeValue) -> bool:
    """Whether two attribute values can be ordered against each other.

    Strings compare with strings; booleans and numbers compare with each
    other (Python semantics), never with strings.
    """
    left_is_str = isinstance(left, str)
    right_is_str = isinstance(right, str)
    return left_is_str == right_is_str


def wire_size(name: str, value: AttributeValue) -> int:
    """Approximate on-the-wire size in bytes of one attribute.

    A compact schema-dictionary encoding: attribute names are carried as
    2-byte ids (devices share the attribute dictionary of a namespace),
    numerics as 4-byte fixed values, strings as UTF-8 plus a length byte.
    With this coding a typical sample entry (namespace, data type, time,
    location) costs ≈30 bytes, matching the paper's metadata entry size
    (§VI-A).
    """
    name_cost = 2
    if isinstance(value, bool):
        return name_cost + 1
    if isinstance(value, _NUMERIC_TYPES):
        return name_cost + 4
    return name_cost + len(value.encode("utf-8")) + 1
