"""Data descriptors (metadata entries).

A :class:`DataDescriptor` is the self-describing identity of a data item or
chunk (§II-B).  Descriptors are immutable and hashable so they can be used
as data-store keys and inserted into Bloom filters.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Tuple

from repro.data import attributes as attr
from repro.data.attributes import AttributeValue, validate_value, wire_size
from repro.errors import DataModelError


class DataDescriptor:
    """An immutable set of named attributes identifying a datum.

    Two descriptors are equal iff they carry the same attribute mapping.
    """

    __slots__ = ("_attrs", "_hash", "_key_cache", "_wire_cache")

    def __init__(self, attrs: Mapping[str, AttributeValue]) -> None:
        self._key_cache: Optional[bytes] = None
        self._wire_cache: Optional[int] = None
        if not attrs:
            raise DataModelError("a descriptor needs at least one attribute")
        validated = {}
        for name, value in attrs.items():
            if not isinstance(name, str) or not name:
                raise DataModelError(f"attribute names must be non-empty str, got {name!r}")
            validated[name] = validate_value(value)
        self._attrs: Tuple[Tuple[str, AttributeValue], ...] = tuple(
            sorted(validated.items())
        )
        self._hash = hash(self._attrs)

    # -- mapping-ish interface -----------------------------------------
    def get(self, name: str, default: Optional[AttributeValue] = None):
        """Return the value of attribute ``name`` or ``default``."""
        for key, value in self._attrs:
            if key == name:
                return value
        return default

    def __contains__(self, name: str) -> bool:
        return any(key == name for key, _ in self._attrs)

    def items(self) -> Iterable[Tuple[str, AttributeValue]]:
        """Iterate ``(name, value)`` pairs in sorted name order."""
        return iter(self._attrs)

    def names(self) -> Tuple[str, ...]:
        """All attribute names in sorted order."""
        return tuple(key for key, _ in self._attrs)

    def as_dict(self) -> dict:
        """A mutable copy of the attribute mapping."""
        return dict(self._attrs)

    # -- identity -------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataDescriptor):
            return NotImplemented
        return self._attrs == other._attrs

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{key}={value!r}" for key, value in self._attrs)
        return f"DataDescriptor({inner})"

    # -- derivation ------------------------------------------------------
    def with_attributes(self, **extra: AttributeValue) -> "DataDescriptor":
        """A new descriptor with ``extra`` attributes added/overridden."""
        merged = self.as_dict()
        merged.update(extra)
        return DataDescriptor(merged)

    def without_attributes(self, *names: str) -> "DataDescriptor":
        """A new descriptor with the given attributes removed."""
        remaining = {k: v for k, v in self._attrs if k not in names}
        return DataDescriptor(remaining)

    def chunk_descriptor(self, chunk_id: int) -> "DataDescriptor":
        """The descriptor of chunk ``chunk_id`` of this item (§II-B)."""
        return self.with_attributes(**{attr.CHUNK_ID: chunk_id})

    def item_descriptor(self) -> "DataDescriptor":
        """Strip a chunk-id, recovering the parent item's descriptor."""
        if attr.CHUNK_ID not in self:
            return self
        return self.without_attributes(attr.CHUNK_ID)

    @property
    def is_chunk(self) -> bool:
        """Whether this descriptor names a chunk of a larger item."""
        return attr.CHUNK_ID in self

    @property
    def chunk_id(self) -> Optional[int]:
        """The chunk id, or None for whole-item descriptors."""
        value = self.get(attr.CHUNK_ID)
        return int(value) if value is not None else None

    # -- accounting -------------------------------------------------------
    def wire_size(self) -> int:
        """Approximate serialized size of this descriptor in bytes (cached)."""
        if self._wire_cache is None:
            self._wire_cache = sum(
                wire_size(name, value) for name, value in self._attrs
            )
        return self._wire_cache

    def stable_key(self) -> bytes:
        """A canonical byte string for hashing into Bloom filters (cached)."""
        if self._key_cache is None:
            parts = []
            for name, value in self._attrs:
                parts.append(name)
                parts.append(type(value).__name__)
                parts.append(repr(value))
            self._key_cache = "\x1f".join(parts).encode("utf-8")
        return self._key_cache


def make_descriptor(
    namespace: str,
    data_type: str,
    **extra: AttributeValue,
) -> DataDescriptor:
    """Convenience constructor used by examples and workload generators."""
    base = {attr.NAMESPACE: namespace, attr.DATA_TYPE: data_type}
    base.update(extra)
    return DataDescriptor(base)
