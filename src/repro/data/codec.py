"""Binary wire codec for the PDS data model.

The simulation accounts message cost through fast ``wire_size()``
estimates; this module provides the *actual* compact encoding a deployed
PDS would put on the wire, so the estimates can be validated and the
library is usable beyond simulation (e.g. over a real UDP socket).

Format building blocks:

* **varint** — LEB128 unsigned; zigzag for signed integers;
* **values** — 1 tag byte + payload; floats use 4 bytes when exactly
  representable in binary32, 8 bytes otherwise (round-trips exactly);
* **attribute names** — 2-byte ids from a shared dictionary for
  well-known names (the schema-dictionary coding assumed by
  :func:`repro.data.attributes.wire_size`), with an inline-string escape
  for unregistered names;
* **descriptors / predicates / query specs** — length-prefixed sequences
  of the above.

Every ``encode_*`` has a matching ``decode_*`` returning
``(value, offset)``; property tests in ``tests/data/test_codec.py`` prove
exact round-trips.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.data import attributes as attr
from repro.data.descriptor import DataDescriptor
from repro.data.predicate import Predicate, QuerySpec, Relation
from repro.errors import DataModelError

# ----------------------------------------------------------------------
# Varints
# ----------------------------------------------------------------------
def encode_varint(value: int) -> bytes:
    """LEB128-encode an unsigned integer."""
    if value < 0:
        raise DataModelError(f"varint requires value >= 0, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode an unsigned LEB128 integer; returns (value, new_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise DataModelError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise DataModelError("varint too long")


def encode_zigzag(value: int) -> bytes:
    """Zigzag + LEB128 for signed integers (2n for n>=0, -2n-1 for n<0)."""
    return encode_varint(2 * value if value >= 0 else -2 * value - 1)


def decode_zigzag(data: bytes, offset: int = 0) -> Tuple[int, int]:
    raw, offset = decode_varint(data, offset)
    return (raw // 2 if raw % 2 == 0 else -(raw + 1) // 2), offset


# ----------------------------------------------------------------------
# Attribute values
# ----------------------------------------------------------------------
_TAG_INT = 0x01
_TAG_FLOAT32 = 0x02
_TAG_FLOAT64 = 0x03
_TAG_STR = 0x04
_TAG_BOOL_TRUE = 0x05
_TAG_BOOL_FALSE = 0x06


def encode_value(value) -> bytes:
    """Encode one attribute value with a type tag."""
    if isinstance(value, bool):
        return bytes([_TAG_BOOL_TRUE if value else _TAG_BOOL_FALSE])
    if isinstance(value, int):
        return bytes([_TAG_INT]) + encode_zigzag(value)
    if isinstance(value, float):
        try:
            packed32 = struct.pack("<f", value)
        except OverflowError:
            packed32 = None  # magnitude beyond binary32 range
        if packed32 is not None and struct.unpack("<f", packed32)[0] == value:
            return bytes([_TAG_FLOAT32]) + packed32
        return bytes([_TAG_FLOAT64]) + struct.pack("<d", value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return bytes([_TAG_STR]) + encode_varint(len(raw)) + raw
    raise DataModelError(f"cannot encode value of type {type(value).__name__}")


def decode_value(data: bytes, offset: int = 0):
    """Decode one tagged value; returns (value, new_offset)."""
    if offset >= len(data):
        raise DataModelError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == _TAG_BOOL_TRUE:
        return True, offset
    if tag == _TAG_BOOL_FALSE:
        return False, offset
    if tag == _TAG_INT:
        return decode_zigzag(data, offset)
    if tag == _TAG_FLOAT32:
        if offset + 4 > len(data):
            raise DataModelError("truncated float32")
        return struct.unpack_from("<f", data, offset)[0], offset + 4
    if tag == _TAG_FLOAT64:
        if offset + 8 > len(data):
            raise DataModelError("truncated float64")
        return struct.unpack_from("<d", data, offset)[0], offset + 8
    if tag == _TAG_STR:
        length, offset = decode_varint(data, offset)
        if offset + length > len(data):
            raise DataModelError("truncated string")
        return data[offset : offset + length].decode("utf-8"), offset + length
    raise DataModelError(f"unknown value tag 0x{tag:02x}")


# ----------------------------------------------------------------------
# Attribute-name dictionary
# ----------------------------------------------------------------------
class AttributeDictionary:
    """Shared name ↔ 2-byte-id mapping (the schema dictionary of §II-B).

    Id 0 is reserved for the inline-string escape, so unregistered names
    still encode (at string cost).
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, int] = {}
        self._by_id: Dict[int, str] = {}

    def register(self, name: str) -> int:
        """Assign (or return) the id for ``name``."""
        existing = self._by_name.get(name)
        if existing is not None:
            return existing
        next_id = len(self._by_name) + 1
        if next_id > 0xFFFF:
            raise DataModelError("attribute dictionary full")
        self._by_name[name] = next_id
        self._by_id[next_id] = name
        return next_id

    def id_of(self, name: str) -> int:
        """The id for ``name``, or 0 if unregistered."""
        return self._by_name.get(name, 0)

    def name_of(self, name_id: int) -> str:
        try:
            return self._by_id[name_id]
        except KeyError:
            raise DataModelError(f"unknown attribute id {name_id}") from None


def default_dictionary() -> AttributeDictionary:
    """A dictionary pre-registered with the well-known attribute names."""
    dictionary = AttributeDictionary()
    for name in (
        attr.NAMESPACE,
        attr.DATA_TYPE,
        attr.TIME,
        attr.LOCATION_X,
        attr.LOCATION_Y,
        attr.TOTAL_CHUNKS,
        attr.CHUNK_ID,
        attr.NAME,
    ):
        dictionary.register(name)
    return dictionary


#: Module-level dictionary used when none is supplied.
DEFAULT_DICTIONARY = default_dictionary()


def _encode_name(name: str, dictionary: AttributeDictionary) -> bytes:
    name_id = dictionary.id_of(name)
    if name_id:
        return struct.pack("<H", name_id)
    raw = name.encode("utf-8")
    return struct.pack("<H", 0) + encode_varint(len(raw)) + raw


def _decode_name(
    data: bytes, offset: int, dictionary: AttributeDictionary
) -> Tuple[str, int]:
    if offset + 2 > len(data):
        raise DataModelError("truncated attribute name")
    (name_id,) = struct.unpack_from("<H", data, offset)
    offset += 2
    if name_id:
        return dictionary.name_of(name_id), offset
    length, offset = decode_varint(data, offset)
    if offset + length > len(data):
        raise DataModelError("truncated attribute name string")
    return data[offset : offset + length].decode("utf-8"), offset + length


# ----------------------------------------------------------------------
# Descriptors
# ----------------------------------------------------------------------
def encode_descriptor(
    descriptor: DataDescriptor,
    dictionary: AttributeDictionary = DEFAULT_DICTIONARY,
) -> bytes:
    """Encode a descriptor as count + (name, value) pairs."""
    parts = [encode_varint(len(descriptor.names()))]
    for name, value in descriptor.items():
        parts.append(_encode_name(name, dictionary))
        parts.append(encode_value(value))
    return b"".join(parts)


def decode_descriptor(
    data: bytes,
    offset: int = 0,
    dictionary: AttributeDictionary = DEFAULT_DICTIONARY,
) -> Tuple[DataDescriptor, int]:
    count, offset = decode_varint(data, offset)
    attrs = {}
    for _ in range(count):
        name, offset = _decode_name(data, offset, dictionary)
        value, offset = decode_value(data, offset)
        attrs[name] = value
    return DataDescriptor(attrs), offset


# ----------------------------------------------------------------------
# Predicates and query specs
# ----------------------------------------------------------------------
_RELATION_TAGS = {relation: index for index, relation in enumerate(Relation)}
_RELATIONS_BY_TAG = {index: relation for relation, index in _RELATION_TAGS.items()}


def encode_predicate(
    predicate: Predicate,
    dictionary: AttributeDictionary = DEFAULT_DICTIONARY,
) -> bytes:
    """Encode one predicate: name + relation tag + operand(s)."""
    parts = [
        _encode_name(predicate.attribute, dictionary),
        bytes([_RELATION_TAGS[predicate.relation]]),
    ]
    relation = predicate.relation
    if relation is Relation.EXISTS:
        pass
    elif relation is Relation.IN:
        operands = list(predicate.operand)
        parts.append(encode_varint(len(operands)))
        for operand in operands:
            parts.append(encode_value(operand))
    elif relation is Relation.BETWEEN:
        low, high = predicate.operand
        parts.append(encode_value(low))
        parts.append(encode_value(high))
    else:
        parts.append(encode_value(predicate.operand))
    return b"".join(parts)


def decode_predicate(
    data: bytes,
    offset: int = 0,
    dictionary: AttributeDictionary = DEFAULT_DICTIONARY,
) -> Tuple[Predicate, int]:
    name, offset = _decode_name(data, offset, dictionary)
    if offset >= len(data):
        raise DataModelError("truncated predicate")
    tag = data[offset]
    offset += 1
    relation = _RELATIONS_BY_TAG.get(tag)
    if relation is None:
        raise DataModelError(f"unknown relation tag {tag}")
    if relation is Relation.EXISTS:
        return Predicate(name, relation), offset
    if relation is Relation.IN:
        count, offset = decode_varint(data, offset)
        operands: List = []
        for _ in range(count):
            value, offset = decode_value(data, offset)
            operands.append(value)
        return Predicate(name, relation, tuple(operands)), offset
    if relation is Relation.BETWEEN:
        low, offset = decode_value(data, offset)
        high, offset = decode_value(data, offset)
        return Predicate(name, relation, (low, high)), offset
    value, offset = decode_value(data, offset)
    return Predicate(name, relation, value), offset


def encode_query_spec(
    spec: QuerySpec,
    dictionary: AttributeDictionary = DEFAULT_DICTIONARY,
) -> bytes:
    """Encode a spec as count + predicates."""
    parts = [encode_varint(len(spec))]
    for predicate in spec.predicates:
        parts.append(encode_predicate(predicate, dictionary))
    return b"".join(parts)


def decode_query_spec(
    data: bytes,
    offset: int = 0,
    dictionary: AttributeDictionary = DEFAULT_DICTIONARY,
) -> Tuple[QuerySpec, int]:
    count, offset = decode_varint(data, offset)
    predicates = []
    for _ in range(count):
        predicate, offset = decode_predicate(data, offset, dictionary)
        predicates.append(predicate)
    return QuerySpec(predicates), offset


# ----------------------------------------------------------------------
# Bloom filters
# ----------------------------------------------------------------------
def encode_bloom(bloom) -> bytes:
    """Encode geometry + seed + bit array."""
    from repro.bloom.bloom_filter import BloomFilter

    if not isinstance(bloom, BloomFilter):
        # NullFilter (or anything filter-like but empty) → zero marker.
        return encode_varint(0)
    return b"".join(
        (
            encode_varint(bloom.m_bits),
            encode_varint(bloom.k_hashes),
            encode_varint(bloom.seed),
            bloom.to_bytes(),
        )
    )


def decode_bloom(data: bytes, offset: int = 0):
    """Decode a filter; returns (BloomFilter | NullFilter, new_offset)."""
    from repro.bloom.bloom_filter import BloomFilter, NullFilter

    m_bits, offset = decode_varint(data, offset)
    if m_bits == 0:
        return NullFilter(), offset
    k_hashes, offset = decode_varint(data, offset)
    seed, offset = decode_varint(data, offset)
    n_bytes = (m_bits + 7) // 8
    if offset + n_bytes > len(data):
        raise DataModelError("truncated bloom filter")
    bloom = BloomFilter(m_bits, k_hashes, seed)
    bloom.load_bytes(data[offset : offset + n_bytes])
    return bloom, offset + n_bytes
