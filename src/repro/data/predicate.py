"""Predicates: the selection language of PDS queries (§II-C).

A query carries a collection of predicates, each constraining one attribute
with a relation (=, !=, <, <=, >, >=, IN, BETWEEN, PREFIX) against a value or
value range.  A descriptor matches a query specification iff it satisfies
*all* predicates (conjunction).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from repro.data.attributes import AttributeValue, validate_value, values_comparable, wire_size
from repro.data.descriptor import DataDescriptor
from repro.errors import DataModelError


class Relation(enum.Enum):
    """Supported predicate relations."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN = "in"
    BETWEEN = "between"
    PREFIX = "prefix"
    EXISTS = "exists"


_ORDERED = {Relation.LT, Relation.LE, Relation.GT, Relation.GE, Relation.BETWEEN}


@dataclass(frozen=True)
class Predicate:
    """A single constraint on one attribute.

    Attributes:
        attribute: Name of the attribute the predicate constrains.
        relation: The comparison relation.
        operand: The value (EQ/NE/LT/...), tuple of values (IN), pair
            (BETWEEN, inclusive on both ends), string prefix (PREFIX) or
            None (EXISTS).
    """

    attribute: str
    relation: Relation
    operand: object = None

    def __post_init__(self) -> None:
        if not self.attribute:
            raise DataModelError("predicate attribute name must be non-empty")
        rel = self.relation
        if rel is Relation.EXISTS:
            if self.operand is not None:
                raise DataModelError("EXISTS takes no operand")
        elif rel is Relation.IN:
            if not isinstance(self.operand, (tuple, frozenset)):
                object.__setattr__(self, "operand", tuple(self.operand))  # type: ignore[arg-type]
            if not self.operand:
                raise DataModelError("IN requires a non-empty collection")
            for value in self.operand:  # type: ignore[union-attr]
                validate_value(value)
        elif rel is Relation.BETWEEN:
            if not isinstance(self.operand, tuple) or len(self.operand) != 2:
                raise DataModelError("BETWEEN requires a (low, high) pair")
            low, high = self.operand
            validate_value(low)
            validate_value(high)
            if not values_comparable(low, high):
                raise DataModelError("BETWEEN bounds must be mutually comparable")
            if low > high:  # type: ignore[operator]
                raise DataModelError(f"BETWEEN bounds out of order: {low!r} > {high!r}")
        elif rel is Relation.PREFIX:
            if not isinstance(self.operand, str):
                raise DataModelError("PREFIX requires a string operand")
        else:
            validate_value(self.operand)

    # ------------------------------------------------------------------
    def matches(self, descriptor: DataDescriptor) -> bool:
        """Whether ``descriptor`` satisfies this predicate.

        A missing attribute never matches (except trivially for EXISTS,
        which requires presence and therefore also fails).
        """
        value = descriptor.get(self.attribute)
        if value is None and self.attribute not in descriptor:
            return False
        rel = self.relation
        if rel is Relation.EXISTS:
            return True
        if rel is Relation.EQ:
            return self._safe_eq(value, self.operand)
        if rel is Relation.NE:
            return not self._safe_eq(value, self.operand)
        if rel is Relation.IN:
            return any(self._safe_eq(value, candidate) for candidate in self.operand)  # type: ignore[union-attr]
        if rel is Relation.PREFIX:
            return isinstance(value, str) and value.startswith(self.operand)  # type: ignore[arg-type]
        # Ordered relations: incomparable types never match.
        if not values_comparable(value, self.operand if rel is not Relation.BETWEEN else self.operand[0]):  # type: ignore[index]
            return False
        if rel is Relation.LT:
            return value < self.operand  # type: ignore[operator]
        if rel is Relation.LE:
            return value <= self.operand  # type: ignore[operator]
        if rel is Relation.GT:
            return value > self.operand  # type: ignore[operator]
        if rel is Relation.GE:
            return value >= self.operand  # type: ignore[operator]
        if rel is Relation.BETWEEN:
            low, high = self.operand  # type: ignore[misc]
            return low <= value <= high  # type: ignore[operator]
        raise DataModelError(f"unknown relation {rel!r}")

    @staticmethod
    def _safe_eq(left: object, right: object) -> bool:
        if isinstance(left, str) != isinstance(right, str):
            return False
        return left == right

    # ------------------------------------------------------------------
    def wire_size(self) -> int:
        """Approximate serialized size of this predicate in bytes."""
        base = len(self.attribute.encode("utf-8")) + 2  # name + relation byte + len
        rel = self.relation
        if rel is Relation.EXISTS:
            return base
        if rel is Relation.IN:
            return base + sum(wire_size("", v) for v in self.operand)  # type: ignore[union-attr]
        if rel is Relation.BETWEEN:
            low, high = self.operand  # type: ignore[misc]
            return base + wire_size("", low) + wire_size("", high)
        return base + wire_size("", self.operand)  # type: ignore[arg-type]


class QuerySpec:
    """A conjunction of predicates — what a consumer asks for (§II-C).

    An empty spec matches everything (used by "give me all metadata"
    discovery queries).
    """

    __slots__ = ("_predicates",)

    def __init__(self, predicates: Iterable[Predicate] = ()) -> None:
        self._predicates: Tuple[Predicate, ...] = tuple(predicates)

    @property
    def predicates(self) -> Tuple[Predicate, ...]:
        return self._predicates

    def matches(self, descriptor: DataDescriptor) -> bool:
        """Whether ``descriptor`` satisfies all predicates."""
        return all(p.matches(descriptor) for p in self._predicates)

    def __len__(self) -> int:
        return len(self._predicates)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuerySpec):
            return NotImplemented
        return self._predicates == other._predicates

    def __hash__(self) -> int:
        return hash(self._predicates)

    def __repr__(self) -> str:
        return f"QuerySpec({list(self._predicates)!r})"

    def wire_size(self) -> int:
        """Approximate serialized size of the predicate list in bytes."""
        return sum(p.wire_size() for p in self._predicates) + 1

    def and_also(self, *extra: Predicate) -> "QuerySpec":
        """A new spec with additional predicates appended."""
        return QuerySpec(self._predicates + tuple(extra))


# ----------------------------------------------------------------------
# Convenience predicate constructors (examples and tests read better).
# ----------------------------------------------------------------------
def eq(attribute: str, value: AttributeValue) -> Predicate:
    """``attribute == value``"""
    return Predicate(attribute, Relation.EQ, value)


def ne(attribute: str, value: AttributeValue) -> Predicate:
    """``attribute != value``"""
    return Predicate(attribute, Relation.NE, value)


def lt(attribute: str, value: AttributeValue) -> Predicate:
    """``attribute < value``"""
    return Predicate(attribute, Relation.LT, value)


def le(attribute: str, value: AttributeValue) -> Predicate:
    """``attribute <= value``"""
    return Predicate(attribute, Relation.LE, value)


def gt(attribute: str, value: AttributeValue) -> Predicate:
    """``attribute > value``"""
    return Predicate(attribute, Relation.GT, value)


def ge(attribute: str, value: AttributeValue) -> Predicate:
    """``attribute >= value``"""
    return Predicate(attribute, Relation.GE, value)


def is_in(attribute: str, values: Sequence[AttributeValue]) -> Predicate:
    """``attribute in values``"""
    return Predicate(attribute, Relation.IN, tuple(values))


def between(attribute: str, low: AttributeValue, high: AttributeValue) -> Predicate:
    """``low <= attribute <= high``"""
    return Predicate(attribute, Relation.BETWEEN, (low, high))


def prefix(attribute: str, value: str) -> Predicate:
    """``attribute.startswith(value)``"""
    return Predicate(attribute, Relation.PREFIX, value)


def exists(attribute: str) -> Predicate:
    """``attribute`` is present."""
    return Predicate(attribute, Relation.EXISTS)


def within_radius(
    x_attr: str,
    y_attr: str,
    center: Tuple[float, float],
    radius: float,
) -> Tuple[Predicate, Predicate]:
    """Bounding-box approximation of a circular spatial filter.

    PDS predicates are per-attribute, so a radius query is expressed as the
    enclosing box — the standard over-approximation for attribute filters.
    """
    cx, cy = center
    return (
        between(x_attr, cx - radius, cx + radius),
        between(y_attr, cy - radius, cy + radius),
    )
