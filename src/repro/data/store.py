"""The per-device Data Store (DS) of §II-C and Algorithms 1–2.

The store holds:

* **metadata entries** — descriptors indicating potential data availability.
  Entries cached *without* the corresponding payload carry an expiration
  time; upon expiry the entry is dropped unless the payload arrived in the
  meantime (§II-C).
* **chunk payloads** — actual data chunks held (produced or cached).

Expiration is lazy: expired entries are purged whenever the store is read,
driven by a caller-supplied clock function so the store stays decoupled from
the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.data.descriptor import DataDescriptor
from repro.data.item import Chunk
from repro.data.predicate import QuerySpec


@dataclass
class MetadataRecord:
    """Book-keeping for one cached metadata entry."""

    descriptor: DataDescriptor
    has_payload: bool
    expires_at: Optional[float]

    def expired(self, now: float) -> bool:
        return (
            not self.has_payload
            and self.expires_at is not None
            and now >= self.expires_at
        )


class DataStore:
    """Metadata + chunk storage with payload-linked expiration.

    Args:
        clock: Zero-argument callable returning the current time; usually
            ``lambda: sim.now``.
        metadata_ttl: Lifetime of a metadata entry cached without payload.
            ``None`` disables expiration.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        metadata_ttl: Optional[float] = None,
    ) -> None:
        self._clock = clock
        self.metadata_ttl = metadata_ttl
        self._metadata: Dict[DataDescriptor, MetadataRecord] = {}
        self._chunks: Dict[DataDescriptor, Chunk] = {}

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def insert_metadata(
        self,
        descriptor: DataDescriptor,
        has_payload: bool = False,
    ) -> bool:
        """Insert or refresh a metadata entry.

        Returns:
            True if the entry was new (not previously present and live).
        """
        now = self._clock()
        record = self._metadata.get(descriptor)
        is_new = record is None or record.expired(now)
        expires_at = None
        if not has_payload and self.metadata_ttl is not None:
            expires_at = now + self.metadata_ttl
        if record is not None and not record.expired(now):
            # Upgrade: once payload is present, the entry no longer expires.
            record.has_payload = record.has_payload or has_payload
            if record.has_payload:
                record.expires_at = None
            else:
                record.expires_at = expires_at
        else:
            self._metadata[descriptor] = MetadataRecord(
                descriptor, has_payload, expires_at
            )
        return is_new

    def has_metadata(self, descriptor: DataDescriptor) -> bool:
        """Whether a live metadata entry for ``descriptor`` exists."""
        record = self._metadata.get(descriptor)
        if record is None:
            return False
        if record.expired(self._clock()):
            del self._metadata[descriptor]
            return False
        return True

    def match_metadata(self, spec: QuerySpec) -> List[DataDescriptor]:
        """All live metadata descriptors satisfying ``spec``."""
        self._purge_expired()
        return [d for d in self._metadata if spec.matches(d)]

    def all_metadata(self) -> List[DataDescriptor]:
        """All live metadata descriptors."""
        self._purge_expired()
        return list(self._metadata)

    def metadata_count(self) -> int:
        """Number of live metadata entries."""
        self._purge_expired()
        return len(self._metadata)

    def remove_metadata(self, descriptor: DataDescriptor) -> None:
        """Explicitly remove a metadata entry (e.g. data deleted)."""
        self._metadata.pop(descriptor, None)

    def _purge_expired(self) -> None:
        now = self._clock()
        expired = [d for d, record in self._metadata.items() if record.expired(now)]
        for descriptor in expired:
            del self._metadata[descriptor]

    # ------------------------------------------------------------------
    # Chunks
    # ------------------------------------------------------------------
    def insert_chunk(self, chunk: Chunk) -> bool:
        """Store a chunk payload; also records/upgrades its metadata entry.

        Returns:
            True if the chunk was not already stored.
        """
        is_new = chunk.descriptor not in self._chunks
        self._chunks[chunk.descriptor] = chunk
        # Holding any chunk of an item keeps the item's metadata alive
        # ("a metadata entry exists as long as ... any chunk ... exists").
        self.insert_metadata(chunk.item_descriptor, has_payload=True)
        self.insert_metadata(chunk.descriptor, has_payload=True)
        return is_new

    def has_chunk(self, descriptor: DataDescriptor) -> bool:
        """Whether the chunk payload with this descriptor is stored."""
        return descriptor in self._chunks

    def get_chunk(self, descriptor: DataDescriptor) -> Optional[Chunk]:
        """The stored chunk, or None."""
        return self._chunks.get(descriptor)

    def chunks_of(self, item_descriptor: DataDescriptor) -> List[Chunk]:
        """All stored chunks belonging to the given item, by chunk id."""
        item_descriptor = item_descriptor.item_descriptor()
        matches = [
            chunk
            for chunk in self._chunks.values()
            if chunk.item_descriptor == item_descriptor
        ]
        return sorted(matches, key=lambda chunk: chunk.chunk_id)

    def chunk_ids_of(self, item_descriptor: DataDescriptor) -> List[int]:
        """Sorted chunk ids stored for the given item."""
        return [chunk.chunk_id for chunk in self.chunks_of(item_descriptor)]

    def chunk_count(self) -> int:
        """Total number of stored chunks."""
        return len(self._chunks)

    def remove_chunk(self, descriptor: DataDescriptor) -> None:
        """Drop a chunk payload (cache eviction)."""
        self._chunks.pop(descriptor, None)

    def match_chunks(self, spec: QuerySpec) -> List[Chunk]:
        """All stored chunks whose descriptors satisfy ``spec``."""
        return [c for c in self._chunks.values() if spec.matches(c.descriptor)]

    # ------------------------------------------------------------------
    def stored_bytes(self) -> int:
        """Total payload bytes held (for storage accounting)."""
        return sum(chunk.size for chunk in self._chunks.values())

    def observe_state(self) -> Dict[str, int]:
        """Flight-recorder view: raw occupancy counters, O(chunks).

        Strictly read-only (no lazy purge) and cheap: ``metadata`` is the
        raw table length — it may include expired-but-unpurged entries,
        which is the honest answer to "how much memory does this table
        hold right now".
        """
        return {
            "metadata": len(self._metadata),
            "chunks": len(self._chunks),
            "bytes": self.stored_bytes(),
        }
