"""``python -m repro`` entry point."""

from repro.cli import _main_guarded

if __name__ == "__main__":
    raise SystemExit(_main_guarded())
