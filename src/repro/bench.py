"""Performance-regression harness: ``repro bench``.

Runs a registry of named benchmarks — micro-benchmarks of the two
mobility hot paths (Bloom-filter ops, the spatial neighbor index) and
reduced end-to-end figure runs — and writes one ``BENCH_<name>.json``
per benchmark::

    python -m repro bench --quick                # run all, write JSON
    python -m repro bench bloom_ops spatial_index
    python -m repro bench --quick --check        # gate against baseline
    python -m repro bench --quick --update-baseline

Each result file carries:

* ``wall_s`` / ``events_per_sec`` — machine-dependent timing,
* ``events`` and ``peak_queue_depth`` — *deterministic* counters
  (processed simulator events, or the operation count for
  micro-benchmarks),
* ``meta.digest`` — a checksum over the benchmark's observable output
  (e.g. the figure's result rows), so any behaviour drift is caught even
  when timing is unchanged.

``--check`` compares against the committed baseline
(``benchmarks/baseline.json``): deterministic counters and digests must
match *exactly* (they are machine-independent), while ``wall_s`` may
regress by at most ``--tolerance`` (default 0.25, i.e. 25%; env override
``REPRO_BENCH_TOLERANCE``).  Faster-than-baseline runs always pass.

Benchmarks pin their own seeds/sizes and force ``REPRO_JOBS=1`` so the
deterministic counters are reproducible regardless of environment knobs.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import sys
import time
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional

SCHEMA_VERSION = 1

DEFAULT_TOLERANCE = 0.25

DEFAULT_BASELINE = Path(__file__).resolve().parents[2] / "benchmarks" / "baseline.json"

#: Baseline wall times below this are too noisy to gate on; deterministic
#: counters still protect such benchmarks against behaviour drift.
MIN_GATED_WALL_S = 0.05

#: name -> fn(quick) -> result dict (wall_s, events, events_per_sec,
#: peak_queue_depth, meta)
_BENCHMARKS: Dict[str, Callable[[bool], Dict[str, object]]] = {}

#: name -> timing repetitions (best-of-N; micro-benchmarks use N > 1 to
#: shed scheduler noise, end-to-end figures are long enough already)
_REPEATS: Dict[str, int] = {}


def _bench(name: str, repeats: int = 1):
    def register(fn: Callable[[bool], Dict[str, object]]):
        _BENCHMARKS[name] = fn
        _REPEATS[name] = repeats
        return fn

    return register


def _digest(payload: object) -> str:
    """Stable checksum of a JSON-serializable benchmark output."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _calibration_wall() -> float:
    """Best-of-5 timing of a fixed pure-Python workload.

    Stored next to every benchmark result; ``--check`` scales the
    baseline's wall times by ``current_cal / baseline_cal`` so the gate
    compares *relative* engine speed and the committed baseline stays
    meaningful on faster or slower machines.
    """
    import math as _math

    def workload() -> float:
        acc = 0.0
        table = {}
        for i in range(120_000):
            acc += _math.hypot(i & 1023, (i * 7) & 511)
            table[i & 4095] = acc
        return acc + len(table)

    best = _math.inf
    for _ in range(5):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best


@contextmanager
def _single_process() -> Iterator[None]:
    """Force sequential sweeps so event counts are reproducible."""
    previous = os.environ.get("REPRO_JOBS")
    os.environ["REPRO_JOBS"] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_JOBS", None)
        else:
            os.environ["REPRO_JOBS"] = previous


@contextmanager
def _scheduler_env(name: str) -> Iterator[None]:
    """Pin the event-kernel scheduler for one benchmark run."""
    previous = os.environ.get("REPRO_SCHEDULER")
    os.environ["REPRO_SCHEDULER"] = name
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_SCHEDULER", None)
        else:
            os.environ["REPRO_SCHEDULER"] = previous


def _peak_rss_kb(ru_maxrss: Optional[int] = None) -> int:
    """This process's peak RSS in KiB, normalized per platform.

    ``getrusage(...).ru_maxrss`` is KiB on Linux but *bytes* on macOS
    (both straight from each kernel's ``struct rusage``), so treating it
    as KiB unconditionally inflates the scaling curve's memory column
    1024x on a Mac.
    """
    if ru_maxrss is None:
        import resource

        ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(ru_maxrss) // 1024
    return int(ru_maxrss)


def _result(
    wall_s: float,
    events: int,
    peak_queue_depth: int,
    meta: Dict[str, object],
) -> Dict[str, object]:
    return {
        "wall_s": round(wall_s, 6),
        "events": events,
        "events_per_sec": round(events / wall_s, 1) if wall_s > 0 else 0.0,
        "peak_queue_depth": peak_queue_depth,
        "meta": meta,
    }


# ----------------------------------------------------------------------
# Micro-benchmarks
# ----------------------------------------------------------------------
@_bench("bloom_ops", repeats=3)
def bench_bloom_ops(quick: bool) -> Dict[str, object]:
    """Bloom insert/test/union over the key mix discovery rounds see."""
    from repro.bloom.bloom_filter import BloomFilter

    n_keys = 2_000 if quick else 20_000
    rounds = 4
    rng = random.Random(1234)
    keys = [
        b"ns=%d\x1ftype=%d\x1fid=%d" % (rng.randrange(8), rng.randrange(4), i)
        for i in range(n_keys)
    ]
    ops = 0
    observed: List[object] = []
    start = time.perf_counter()
    for round_index in range(rounds):
        issued = BloomFilter.for_capacity(n_keys, seed=round_index)
        merged = BloomFilter(issued.m_bits, issued.k_hashes, seed=round_index)
        for key in keys:
            issued.insert(key)
        ops += n_keys
        hits = sum(1 for key in keys if key in issued)
        ops += n_keys
        misses = sum(1 for i in range(n_keys) if b"absent-%d" % i in issued)
        ops += n_keys
        for key in keys[: n_keys // 2]:
            merged.insert(key)
        merged.union_update(issued)
        ops += n_keys // 2 + 1
        observed.append(
            [hits, misses, merged.count, zlib.crc32(merged.to_bytes())]
        )
    wall = time.perf_counter() - start
    return _result(
        wall,
        events=ops,
        peak_queue_depth=0,
        meta={"keys": n_keys, "rounds": rounds, "digest": _digest(observed)},
    )


@_bench("spatial_index", repeats=3)
def bench_spatial_index(quick: bool) -> Dict[str, object]:
    """Neighbor queries interleaved with moves (random-waypoint style)."""
    from repro.net.topology import Topology

    n_nodes = 150 if quick else 400
    steps = 2_000 if quick else 12_000
    rng = random.Random(99)
    topology = Topology(radio_range=30.0)
    width = height = 400.0
    for node in range(n_nodes):
        topology.add_node(node, (rng.uniform(0, width), rng.uniform(0, height)))
    ops = 0
    checksum = 0
    start = time.perf_counter()
    for step in range(steps):
        node = rng.randrange(n_nodes)
        if step % 3 == 0:
            topology.move(node, (rng.uniform(0, width), rng.uniform(0, height)))
        neighbors = topology.neighbors(node)
        checksum = (checksum * 31 + len(neighbors)) % (1 << 61)
        ops += 1 + len(neighbors)
    wall = time.perf_counter() - start
    return _result(
        wall,
        events=ops,
        peak_queue_depth=0,
        meta={"nodes": n_nodes, "steps": steps, "digest": _digest(checksum)},
    )


# ----------------------------------------------------------------------
# End-to-end figure benchmarks
# ----------------------------------------------------------------------
def _profiled_figure(run: Callable[[], object]) -> Dict[str, object]:
    from repro.obs.fingerprint import configured_fingerprint
    from repro.obs.profile import RunProfiler
    from repro.obs.recorder import configured_recording

    profiler = RunProfiler()
    with _single_process(), profiler.activate():
        start = time.perf_counter()
        rows = run()
        wall = time.perf_counter() - start
    summary = profiler.summary()
    meta: Dict[str, object] = {
        "runs": int(summary["runs"]),
        "digest": _digest(json.loads(json.dumps(rows))),
    }
    if configured_recording() is not None:
        # Flight-recorder sampling adds its own simulator events, so the
        # event counters legitimately differ from an unrecorded baseline.
        # The digest is NOT exempted: result rows must stay bit-identical
        # with the recorder on (the zero-perturbation contract).
        meta["recorded"] = True
    if configured_fingerprint() is not None:
        # Fingerprinting observes the existing event stream without adding
        # events, so the counters stay comparable — but its wall overhead
        # means timings belong to a different budget than an unmarked
        # baseline.  The digest is never exempted: fingerprinted results
        # must stay bit-identical (the zero-perturbation contract).
        meta["fingerprinted"] = True
    return _result(
        wall,
        events=int(summary["events"]),
        peak_queue_depth=int(summary["peak_queue_depth"]),
        meta=meta,
    )


@_bench("mobility_pdd", repeats=2)
def bench_mobility_pdd(quick: bool) -> Dict[str, object]:
    """Reduced fig9/10 mobility sweep — the engine's hottest workload."""
    from repro.experiments.figures.fig9_10_mobility_pdd import run_both_locations

    if quick:
        return _profiled_figure(
            lambda: run_both_locations(
                scales=(0.5, 1.5), seeds=[1], metadata_count=600
            )
        )
    return _profiled_figure(
        lambda: run_both_locations(seeds=[1, 2], metadata_count=1250)
    )


_SCALING_GRIDS_QUICK = ((5, 6), (8, 8), (11, 11))  # 30, 64, 121 nodes
_SCALING_GRIDS_FULL = (
    (5, 6),  # 30 nodes — the paper's smallest static grids
    (8, 8),  # 64
    (12, 12),  # 144
    (18, 18),  # 324
    (24, 24),  # 576
    (32, 32),  # 1024 — the ROADMAP's city-scale target
)


#: Event-kernel schedulers the scaling benchmark compares.  The
#: deterministic outputs of every grid must be identical across them
#: (they are order-identical by contract); the digest covers every
#: scheduler's outputs so any divergence fails ``--check`` loudly.
_SCALING_SCHEDULERS = ("heap", "calendar")


@_bench("scaling", repeats=1)
def bench_scaling(quick: bool) -> Dict[str, object]:
    """Events/s vs node count per scheduler: the kernel's scaling curve."""
    import gc

    from repro.core.rounds import RoundConfig
    from repro.experiments.figures.common import pdd_experiment
    from repro.obs.kernelprof import KernelProfiler
    from repro.obs.profile import RunProfiler

    grids = _SCALING_GRIDS_QUICK if quick else _SCALING_GRIDS_FULL
    curve: List[Dict[str, object]] = []
    deterministic: List[List[object]] = []
    total_wall = 0.0
    total_events = 0
    peak_queue = 0
    for rows, cols in grids:
        nodes = rows * cols
        point_outputs: List[List[object]] = []
        for scheduler in _SCALING_SCHEDULERS:
            gc.collect()
            profiler = RunProfiler()
            kernel = KernelProfiler()
            with _single_process(), _scheduler_env(scheduler), \
                    profiler.activate(), kernel.activate():
                start = time.perf_counter()
                outcome = pdd_experiment(
                    seed=1,
                    rows=rows,
                    cols=cols,
                    metadata_count=2 * nodes,
                    # Two rounds bound convergence so the curve measures
                    # kernel throughput, not per-size protocol behaviour.
                    round_config=RoundConfig(max_rounds=2),
                    sim_cap_s=120.0,
                )
                wall = time.perf_counter() - start
            summary = profiler.summary()
            events = int(summary["events"])
            point_peak = int(summary["peak_queue_depth"])
            kernel_ns = kernel.kernel_ns
            subsystems = sorted(
                kernel.subsystem_totals().items(), key=lambda item: -item[1][1]
            )
            # The process-wide RSS high-water mark, so the curve is
            # monotonic by construction: each point reports the peak up to
            # and including its own run.
            peak_rss_kb = _peak_rss_kb()
            first = outcome.first
            point_outputs.append(
                [
                    events,
                    point_peak,
                    round(first.recall, 6),
                    first.result.rounds,
                    outcome.total_overhead_bytes,
                ]
            )
            curve.append(
                {
                    "nodes": nodes,
                    "rows": rows,
                    "cols": cols,
                    "scheduler": scheduler,
                    "wall_s": round(wall, 6),
                    "events": events,
                    "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
                    "peak_queue_depth": point_peak,
                    "peak_rss_kb": peak_rss_kb,
                    "kernel_share": round(kernel_ns / kernel.wall_ns, 4)
                    if kernel.wall_ns > 0
                    else 0.0,
                    "subsystems": {
                        name: round(ns / kernel_ns, 4) if kernel_ns else 0.0
                        for name, (_, ns) in subsystems[:4]
                    },
                    "recall": round(first.recall, 3),
                }
            )
            print(
                f"    {nodes:5d} nodes  {scheduler:>8s}  wall {wall:7.3f}s  "
                f"{events:8d} events  {events / wall if wall > 0 else 0:9.0f} ev/s  "
                f"rss {peak_rss_kb / 1024:.0f} MiB",
                flush=True,
            )
            total_wall += wall
            total_events += events
            peak_queue = max(peak_queue, point_peak)
        # Every scheduler's deterministic outputs enter the digest, so a
        # kernel that drifts from the heap reference — event counts, peak
        # depth, recall, anything — fails --check, not just the oracle
        # tests.  Identical kernels contribute identical sublists.
        deterministic.append([nodes] + point_outputs)
        if any(output != point_outputs[0] for output in point_outputs[1:]):
            # Name exactly which deterministic outputs drifted instead of
            # dumping every field of every scheduler, and hand the reader
            # the command that bisects the runs to the first divergent
            # event.
            labels = (
                "events",
                "peak_queue_depth",
                "recall",
                "rounds",
                "overhead_bytes",
            )
            print(
                f"    WARNING: schedulers disagree at {nodes} nodes:",
                file=sys.stderr,
                flush=True,
            )
            reference = point_outputs[0]
            for scheduler, outputs in zip(
                _SCALING_SCHEDULERS[1:], point_outputs[1:]
            ):
                for label, ref_value, value in zip(labels, reference, outputs):
                    if value != ref_value:
                        print(
                            f"      {label}: {_SCALING_SCHEDULERS[0]}="
                            f"{ref_value} {scheduler}={value}",
                            file=sys.stderr,
                            flush=True,
                        )
            print(
                "      bisect to the first divergent event with:\n"
                f"        python -m repro diverge "
                f"--a scheduler={_SCALING_SCHEDULERS[0]} "
                f"--b scheduler={_SCALING_SCHEDULERS[1]} "
                f"--rows {rows} --cols {cols} "
                f"--metadata-count {2 * nodes} --max-rounds 2",
                file=sys.stderr,
                flush=True,
            )
    result = _result(
        total_wall,
        events=total_events,
        peak_queue_depth=peak_queue,
        meta={"points": len(curve), "digest": _digest(deterministic)},
    )
    # Machine-dependent per-point data lives OUTSIDE meta: the repeat
    # loop and the baseline check treat meta as deterministic, while the
    # curve's wall times are gated per point with the speed-normalized
    # tolerance (see _check_one).
    result["curve"] = curve
    return result


@_bench("round_params", repeats=2)
def bench_round_params(quick: bool) -> Dict[str, object]:
    """Reduced fig5 round-parameter sweep (static grid, heavy discovery)."""
    from repro.experiments.figures.fig5_round_params import run

    if quick:
        return _profiled_figure(
            lambda: run(
                windows=(0.4, 1.0),
                tds=(0.0,),
                seeds=[1],
                metadata_count=1200,
                rows_cols=6,
            )
        )
    return _profiled_figure(
        lambda: run(
            windows=(0.2, 0.6, 1.0),
            tds=(0.0, 0.3),
            seeds=[1, 2],
            metadata_count=2500,
            rows_cols=8,
        )
    )


# ----------------------------------------------------------------------
# Baseline check
# ----------------------------------------------------------------------
def _check_one(
    name: str,
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float,
) -> List[str]:
    """Failure messages for one benchmark vs its baseline entry."""
    failures: List[str] = []
    recorder_mismatch = bool(
        (current.get("meta") or {}).get("recorded")
    ) != bool((baseline.get("meta") or {}).get("recorded"))
    if not recorder_mismatch:
        # With the flight recorder enabled on only one side, its sampling
        # events make the raw counters incomparable; the digest below
        # still gates bit-identical results, and wall time still gates
        # the recorder's overhead budget.
        for field in ("events", "peak_queue_depth"):
            if current[field] != baseline.get(field):
                failures.append(
                    f"{name}: deterministic counter {field!r} changed: "
                    f"baseline {baseline.get(field)} != current {current[field]}"
                )
    base_digest = (baseline.get("meta") or {}).get("digest")
    cur_digest = (current.get("meta") or {}).get("digest")
    if base_digest != cur_digest:
        failures.append(
            f"{name}: output digest changed: "
            f"baseline {base_digest} != current {cur_digest}\n"
            "  the simulation now produces different deterministic output; "
            "bisect to the first divergent event with e.g.\n"
            "    python -m repro diverge --a scheduler=heap "
            "--b scheduler=calendar\n"
            "  (swap a side for jobs=2 / profile=on / perturb=stream:index "
            "or file=<fingerprint.jsonl> to compare against a recorded run)"
        )
    # Normalize for machine speed: scale the baseline by the ratio of
    # calibration-loop timings taken on each machine.
    base_cal = baseline.get("calibration_s")
    cur_cal = current.get("calibration_s")
    speed_ratio = 1.0
    if (
        isinstance(base_cal, (int, float))
        and isinstance(cur_cal, (int, float))
        and base_cal > 0
    ):
        speed_ratio = float(cur_cal) / float(base_cal)
    base_wall = baseline.get("wall_s")
    if isinstance(base_wall, (int, float)) and base_wall >= MIN_GATED_WALL_S:
        limit = base_wall * speed_ratio * (1.0 + tolerance)
        if float(current["wall_s"]) > limit:
            failures.append(
                f"{name}: wall-clock regression: {current['wall_s']:.3f}s > "
                f"{limit:.3f}s (baseline {base_wall:.3f}s × speed ratio "
                f"{speed_ratio:.2f} + {tolerance:.0%})"
            )
    # Scaling-curve benchmarks gate per point too, so a regression that
    # only bites at large node counts cannot hide inside the total.
    # Points are keyed by (nodes, scheduler): the curve carries one entry
    # per event-kernel scheduler per grid size.
    base_curve = baseline.get("curve")
    cur_curve = current.get("curve")
    if isinstance(base_curve, list) and isinstance(cur_curve, list):
        cur_by_key = {
            (point.get("nodes"), point.get("scheduler")): point
            for point in cur_curve
            if isinstance(point, dict)
        }
        for base_point in base_curve:
            if not isinstance(base_point, dict):
                continue
            nodes = base_point.get("nodes")
            scheduler = base_point.get("scheduler")
            label = f"{nodes} nodes" + (f" [{scheduler}]" if scheduler else "")
            point = cur_by_key.get((nodes, scheduler))
            if point is None:
                failures.append(
                    f"{name}: curve point for {label} missing "
                    f"from current run"
                )
                continue
            base_point_wall = base_point.get("wall_s")
            if (
                isinstance(base_point_wall, (int, float))
                and base_point_wall >= MIN_GATED_WALL_S
            ):
                limit = base_point_wall * speed_ratio * (1.0 + tolerance)
                if float(point.get("wall_s", 0.0)) > limit:
                    failures.append(
                        f"{name}: curve regression at {label}: "
                        f"{point['wall_s']:.3f}s > {limit:.3f}s "
                        f"(baseline {base_point_wall:.3f}s × speed ratio "
                        f"{speed_ratio:.2f} + {tolerance:.0%})"
                    )
    return failures


def _baseline_section(quick: bool) -> str:
    return "quick" if quick else "full"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run performance benchmarks and write BENCH_<name>.json.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="benchmarks to run (default: all; see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available benchmarks"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced workloads (CI smoke; separate baseline section)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline JSON path (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional wall-clock regression "
        f"(default: REPRO_BENCH_TOLERANCE or {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--scheduler",
        choices=("heap", "calendar"),
        default=None,
        help="event-kernel scheduler for the figure benchmarks (sets "
        "REPRO_SCHEDULER; the scaling benchmark always runs both). "
        "Schedulers are order-identical, so --check digests must pass "
        "under either.",
    )
    parser.add_argument(
        "--fingerprint",
        metavar="FILE",
        default=None,
        help="fingerprint every simulated event into FILE while "
        "benchmarking (sets REPRO_FINGERPRINT; results must stay "
        "bit-identical, wall time pays the fingerprint overhead)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write current results into the baseline file",
    )
    parser.add_argument(
        "--out-dir",
        default=".",
        help="directory for BENCH_<name>.json files (default: cwd)",
    )
    return parser


def _resolve_tolerance(arg: Optional[float]) -> float:
    if arg is not None:
        return arg
    raw = os.environ.get("REPRO_BENCH_TOLERANCE")
    if raw:
        try:
            return float(raw)
        except ValueError:
            print(
                f"ignoring invalid REPRO_BENCH_TOLERANCE={raw!r}",
                file=sys.stderr,
            )
    return DEFAULT_TOLERANCE


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list:
        print("Available benchmarks:")
        for name, fn in _BENCHMARKS.items():
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:16s} {summary}")
        return 0

    names = args.names or list(_BENCHMARKS)
    unknown = [name for name in names if name not in _BENCHMARKS]
    if unknown:
        print(
            f"unknown benchmark(s): {', '.join(unknown)}; "
            "try `repro bench --list`",
            file=sys.stderr,
        )
        return 2

    if args.scheduler is not None:
        os.environ["REPRO_SCHEDULER"] = args.scheduler
    if args.fingerprint is not None:
        os.environ["REPRO_FINGERPRINT"] = args.fingerprint

    tolerance = _resolve_tolerance(args.tolerance)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    calibration_s = _calibration_wall()
    print(f"calibration: {calibration_s * 1000:.1f}ms", flush=True)

    results: Dict[str, Dict[str, object]] = {}
    for name in names:
        print(f"bench {name} ({'quick' if args.quick else 'full'}) ...", flush=True)
        result = _BENCHMARKS[name](args.quick)
        # Best-of-N timing for short benchmarks; deterministic fields
        # must agree across repetitions or the benchmark itself is broken.
        for _ in range(_REPEATS[name] - 1):
            rerun = _BENCHMARKS[name](args.quick)
            for field in ("events", "peak_queue_depth", "meta"):
                if rerun[field] != result[field]:
                    print(
                        f"{name}: nondeterministic {field!r} across repeats",
                        file=sys.stderr,
                    )
                    return 2
            if rerun["wall_s"] < result["wall_s"]:
                result = rerun
        record = {
            "schema": SCHEMA_VERSION,
            "name": name,
            "quick": args.quick,
            "calibration_s": round(calibration_s, 6),
            **result,
        }
        results[name] = record
        out_path = out_dir / f"BENCH_{name}.json"
        out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(
            f"  wall {record['wall_s']:.3f}s  events {record['events']}  "
            f"{record['events_per_sec']:.0f} ev/s  "
            f"peak queue {record['peak_queue_depth']}  -> {out_path}"
        )

    baseline_path = Path(args.baseline)
    section = _baseline_section(args.quick)

    if args.update_baseline:
        if baseline_path.exists():
            baseline = json.loads(baseline_path.read_text())
        else:
            baseline = {"schema": SCHEMA_VERSION, "tolerance": DEFAULT_TOLERANCE}
        baseline.setdefault(section, {}).update(results)
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {baseline_path} [{section}]")
        return 0

    if args.check:
        if not baseline_path.exists():
            print(f"no baseline at {baseline_path}", file=sys.stderr)
            return 2
        baseline = json.loads(baseline_path.read_text()).get(section, {})
        failures: List[str] = []
        for name, record in results.items():
            entry = baseline.get(name)
            if entry is None:
                failures.append(f"{name}: no [{section}] baseline entry")
                continue
            failures.extend(_check_one(name, record, entry, tolerance))
        if failures:
            print("\nPERF CHECK FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\nperf check passed ({len(results)} benchmarks, "
              f"wall tolerance {tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
