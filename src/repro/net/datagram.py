"""Datagram framing: PDS messages over real UDP sockets.

The simulation never opens sockets, but a deployed PDS is exactly "UDP
broadcast with intended-receiver lists" (§V).  These helpers frame encoded
messages (:mod:`repro.core.wire`) for a datagram transport: a magic/version
prefix guards against foreign traffic, and a length field guards against
truncation by undersized receive buffers.

Usage with a standard socket::

    sock.sendto(pack_datagram(message), ("255.255.255.255", PDS_PORT))
    message = unpack_datagram(sock.recv(65535))
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.core.wire import decode_message, encode_message
from repro.data.codec import AttributeDictionary, DEFAULT_DICTIONARY
from repro.errors import ProtocolError

#: Magic bytes + protocol version prefixing every datagram.
MAGIC = b"PDS1"

#: Default UDP port for PDS traffic.
PDS_PORT = 47474

#: Largest payload we frame (fits a 64 KiB UDP datagram with headroom).
MAX_DATAGRAM_PAYLOAD = 64_000


def pack_datagram(
    message, dictionary: AttributeDictionary = DEFAULT_DICTIONARY
) -> bytes:
    """Frame one message: MAGIC + length + encoded body."""
    body = encode_message(message, dictionary)
    if len(body) > MAX_DATAGRAM_PAYLOAD:
        raise ProtocolError(
            f"message of {len(body)} bytes exceeds the datagram limit "
            f"({MAX_DATAGRAM_PAYLOAD}); chunk payloads ship out-of-band"
        )
    return MAGIC + struct.pack("<I", len(body)) + body


def unpack_datagram(
    data: bytes, dictionary: AttributeDictionary = DEFAULT_DICTIONARY
):
    """Parse a framed datagram back into a message.

    Raises:
        ProtocolError: wrong magic, truncation, or undecodable body.
    """
    header = len(MAGIC) + 4
    if len(data) < header:
        raise ProtocolError("datagram shorter than its header")
    if data[: len(MAGIC)] != MAGIC:
        raise ProtocolError("not a PDS datagram (bad magic)")
    (length,) = struct.unpack_from("<I", data, len(MAGIC))
    body = data[header : header + length]
    if len(body) != length:
        raise ProtocolError(
            f"truncated datagram: announced {length} bytes, got {len(body)}"
        )
    return decode_message(body, dictionary)


def try_unpack(data: bytes) -> Optional[object]:
    """Best-effort parse: None instead of an exception (noisy networks)."""
    try:
        return unpack_datagram(data)
    except ProtocolError:
        return None
