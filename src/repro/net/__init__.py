"""Wireless substrate: topology, broadcast medium, radio, pacing, acks."""

from repro.net.energy import EnergyModel, EnergyReport, energy_report
from repro.net.faces import BroadcastFace
from repro.net.leaky_bucket import (
    DEFAULT_BUCKET_CAPACITY,
    DEFAULT_LEAK_RATE_BPS,
    LeakyBucket,
    LeakyBucketConfig,
)
from repro.net.medium import (
    DEFAULT_BASE_LOSS,
    DEFAULT_BROADCAST_RATE_BPS,
    BroadcastMedium,
)
from repro.net.message import ACK_PAYLOAD_BYTES, FRAME_HEADER_BYTES, AckMessage, Frame
from repro.net.radio import Radio, RadioConfig
from repro.net.reliability import (
    DEFAULT_MAX_RETRANSMISSIONS,
    DEFAULT_RETR_TIMEOUT_S,
    ReliabilityConfig,
    ReliabilityReceiver,
    ReliabilitySender,
)
from repro.net.stats import NetworkStats
from repro.net.topology import (
    NodeId,
    Topology,
    build_grid,
    center_node,
    center_subgrid,
    grid_spacing_for_8_neighbors,
)
from repro.net.wifi_direct import WifiDirectLayout, build_wifi_direct_topology

__all__ = [
    "ACK_PAYLOAD_BYTES",
    "AckMessage",
    "BroadcastFace",
    "BroadcastMedium",
    "DEFAULT_BASE_LOSS",
    "DEFAULT_BROADCAST_RATE_BPS",
    "DEFAULT_BUCKET_CAPACITY",
    "DEFAULT_LEAK_RATE_BPS",
    "DEFAULT_MAX_RETRANSMISSIONS",
    "DEFAULT_RETR_TIMEOUT_S",
    "EnergyModel",
    "EnergyReport",
    "FRAME_HEADER_BYTES",
    "Frame",
    "energy_report",
    "LeakyBucket",
    "LeakyBucketConfig",
    "NetworkStats",
    "NodeId",
    "Radio",
    "RadioConfig",
    "ReliabilityConfig",
    "ReliabilityReceiver",
    "ReliabilitySender",
    "Topology",
    "WifiDirectLayout",
    "build_grid",
    "build_wifi_direct_topology",
    "center_node",
    "center_subgrid",
    "grid_spacing_for_8_neighbors",
]
