"""Node placement and the neighbor relation.

The topology tracks a position per node and derives connectivity from a
disk model: two nodes are neighbors iff their distance is at most
``radio_range``.  Mobility models move nodes by calling :meth:`move`;
join/leave events add and remove nodes.  A 10×10 grid spaced so each node
reaches its 8 surrounding neighbors is the paper's static scenario (§VI-A).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import TopologyError

NodeId = int
Position = Tuple[float, float]


class Topology:
    """Mutable set of node positions with disk-model connectivity."""

    def __init__(self, radio_range: float) -> None:
        if radio_range <= 0:
            raise TopologyError(f"radio range must be positive, got {radio_range}")
        self.radio_range = radio_range
        self._positions: Dict[NodeId, Position] = {}
        #: Bumped on every mutation; range-query caches key off it.
        self.version = 0
        self._range_cache: Dict[Tuple[NodeId, float], List[NodeId]] = {}

    def _invalidate(self) -> None:
        self.version += 1
        if self._range_cache:
            self._range_cache.clear()

    # ------------------------------------------------------------------
    def add_node(self, node_id: NodeId, position: Position) -> None:
        """Place a new node.

        Raises:
            TopologyError: if the node already exists.
        """
        if node_id in self._positions:
            raise TopologyError(f"node {node_id} already in topology")
        self._positions[node_id] = (float(position[0]), float(position[1]))
        self._invalidate()

    def remove_node(self, node_id: NodeId) -> None:
        """Remove a node (e.g. user left the area)."""
        if node_id not in self._positions:
            raise TopologyError(f"node {node_id} not in topology")
        del self._positions[node_id]
        self._invalidate()

    def move(self, node_id: NodeId, position: Position) -> None:
        """Update a node's position."""
        if node_id not in self._positions:
            raise TopologyError(f"node {node_id} not in topology")
        self._positions[node_id] = (float(position[0]), float(position[1]))
        self._invalidate()

    # ------------------------------------------------------------------
    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def nodes(self) -> List[NodeId]:
        """All node ids currently present."""
        return list(self._positions)

    def position(self, node_id: NodeId) -> Position:
        """Current position of ``node_id``."""
        try:
            return self._positions[node_id]
        except KeyError:
            raise TopologyError(f"node {node_id} not in topology") from None

    def distance(self, a: NodeId, b: NodeId) -> float:
        """Euclidean distance between two nodes."""
        ax, ay = self.position(a)
        bx, by = self.position(b)
        return math.hypot(ax - bx, ay - by)

    def in_range(self, a: NodeId, b: NodeId) -> bool:
        """Whether ``a`` and ``b`` can hear each other (a != b)."""
        if a == b:
            return False
        if a not in self._positions or b not in self._positions:
            return False
        return self.distance(a, b) <= self.radio_range

    def nodes_within(self, node_id: NodeId, radius: float) -> List[NodeId]:
        """All other nodes within ``radius`` of ``node_id`` (cached).

        The cache is invalidated by any topology mutation, so static
        scenarios pay the O(N) scan once per node.
        """
        if node_id not in self._positions:
            return []
        key = (node_id, radius)
        cached = self._range_cache.get(key)
        if cached is not None:
            return cached
        x, y = self._positions[node_id]
        result = []
        for other, (ox, oy) in self._positions.items():
            if other != node_id and math.hypot(x - ox, y - oy) <= radius:
                result.append(other)
        self._range_cache[key] = result
        return result

    def neighbors(self, node_id: NodeId) -> List[NodeId]:
        """All nodes within radio range of ``node_id``."""
        return self.nodes_within(node_id, self.radio_range)

    # ------------------------------------------------------------------
    def hop_distance(self, source: NodeId, target: NodeId) -> Optional[int]:
        """Fewest hops from source to target, or None if disconnected.

        BFS over the current connectivity graph; used by tests and metrics,
        never by the protocol itself (nodes have no global knowledge).
        """
        if source == target:
            return 0
        visited = {source}
        frontier = [source]
        hops = 0
        while frontier:
            hops += 1
            next_frontier = []
            for node in frontier:
                for neighbor in self.neighbors(node):
                    if neighbor in visited:
                        continue
                    if neighbor == target:
                        return hops
                    visited.add(neighbor)
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return None

    def is_connected(self) -> bool:
        """Whether the current graph is a single connected component."""
        nodes = self.nodes()
        if len(nodes) <= 1:
            return True
        start = nodes[0]
        visited = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in self.neighbors(node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)
        return len(visited) == len(nodes)


def grid_spacing_for_8_neighbors(radio_range: float) -> float:
    """Grid spacing such that diagonal neighbors are just in range.

    With spacing ``s``, the 8 surrounding neighbors lie at distance ``s`` or
    ``s*sqrt(2)``; the next ring starts at ``2s``.  Any ``s`` with
    ``range/2 < s <= range/sqrt(2)`` works; we centre the window.
    """
    return radio_range / 1.6


def build_grid(
    rows: int,
    cols: int,
    radio_range: float = 40.0,
    spacing: Optional[float] = None,
    first_id: NodeId = 0,
) -> Tuple[Topology, List[NodeId]]:
    """A rows×cols grid where each node reaches its 8 surrounding neighbors.

    Returns:
        ``(topology, node_ids)`` with node ids assigned row-major.
    """
    if rows <= 0 or cols <= 0:
        raise TopologyError(f"grid must be non-empty, got {rows}x{cols}")
    if spacing is None:
        spacing = grid_spacing_for_8_neighbors(radio_range)
    if spacing * math.sqrt(2) > radio_range:
        raise TopologyError(
            f"spacing {spacing} too wide for radio range {radio_range}: "
            "diagonal neighbors would be out of range"
        )
    if 2 * spacing <= radio_range:
        raise TopologyError(
            f"spacing {spacing} too tight for radio range {radio_range}: "
            "nodes two columns away would be in range"
        )
    topology = Topology(radio_range)
    node_ids: List[NodeId] = []
    node_id = first_id
    for row in range(rows):
        for col in range(cols):
            topology.add_node(node_id, (col * spacing, row * spacing))
            node_ids.append(node_id)
            node_id += 1
    return topology, node_ids


def center_node(rows: int, cols: int, node_ids: List[NodeId]) -> NodeId:
    """The id of the node at the grid centre (the paper's consumer spot)."""
    return node_ids[(rows // 2) * cols + cols // 2]


def center_subgrid(
    rows: int, cols: int, node_ids: List[NodeId], sub: int = 5
) -> List[NodeId]:
    """Node ids of the central ``sub×sub`` subgrid (§VI-A consumer pool)."""
    sub = min(sub, rows, cols)
    row0 = (rows - sub) // 2
    col0 = (cols - sub) // 2
    picked = []
    for row in range(row0, row0 + sub):
        for col in range(col0, col0 + sub):
            picked.append(node_ids[row * cols + col])
    return picked
