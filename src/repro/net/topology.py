"""Node placement and the neighbor relation.

The topology tracks a position per node and derives connectivity from a
disk model: two nodes are neighbors iff their distance is at most
``radio_range``.  Mobility models move nodes by calling :meth:`move`;
join/leave events add and remove nodes.  A 10×10 grid spaced so each node
reaches its 8 surrounding neighbors is the paper's static scenario (§VI-A).

Range queries run on a uniform-grid spatial index (cell side =
``radio_range``), so :meth:`neighbors`/:meth:`nodes_within` cost
O(occupancy of the covering cells) instead of O(N).  Results are memoized
per ``(node, radius)`` and invalidated *incrementally*: a move only evicts
the entries of nodes near the old or new position, so one walking node no
longer wipes the neighbor knowledge of the whole area.  Query results are
returned as fresh lists — callers may mutate them freely without poisoning
the shared cache — and their element order is the node *insertion* order,
exactly what the previous brute-force scan over the position dict yielded,
which keeps event orderings (and therefore whole simulations)
bit-identical to the unindexed implementation.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import TopologyError

NodeId = int
Position = Tuple[float, float]

Cell = Tuple[int, int]

#: Hard caps keeping the memo bounded for pathological workloads (many
#: distinct query radii, or huge populations): blow past either and the
#: memo is simply dropped and rebuilt on demand.
_MAX_CACHED_RADII = 16
_MAX_CACHED_ENTRIES = 1 << 17


class Topology:
    """Mutable set of node positions with disk-model connectivity."""

    def __init__(self, radio_range: float) -> None:
        if radio_range <= 0:
            raise TopologyError(f"radio range must be positive, got {radio_range}")
        self.radio_range = radio_range
        self._positions: Dict[NodeId, Position] = {}
        #: Bumped on every mutation; range-query caches key off it.
        self.version = 0
        #: Uniform grid: cell -> ids of nodes inside it.
        self._cell_size = radio_range
        self._cells: Dict[Cell, Set[NodeId]] = {}
        self._cell_of: Dict[NodeId, Cell] = {}
        #: Monotonic insertion index per node; range-query results are
        #: sorted by it to reproduce position-dict iteration order.
        self._order: Dict[NodeId, int] = {}
        self._order_counter = itertools.count()
        #: radius -> node -> cached ``nodes_within`` result.
        self._range_cache: Dict[float, Dict[NodeId, List[NodeId]]] = {}
        self._cache_entries = 0

    # ------------------------------------------------------------------
    # Spatial index internals
    # ------------------------------------------------------------------
    def _cell(self, position: Position) -> Cell:
        size = self._cell_size
        return (math.floor(position[0] / size), math.floor(position[1] / size))

    def _index_add(self, node_id: NodeId, position: Position) -> None:
        cell = self._cell(position)
        self._cells.setdefault(cell, set()).add(node_id)
        self._cell_of[node_id] = cell
        self._order[node_id] = next(self._order_counter)

    def _index_remove(self, node_id: NodeId) -> None:
        cell = self._cell_of.pop(node_id)
        bucket = self._cells[cell]
        bucket.discard(node_id)
        if not bucket:
            del self._cells[cell]
        del self._order[node_id]

    def _index_move(self, node_id: NodeId, position: Position) -> None:
        old = self._cell_of[node_id]
        new = self._cell(position)
        if new == old:
            return
        bucket = self._cells[old]
        bucket.discard(node_id)
        if not bucket:
            del self._cells[old]
        self._cells.setdefault(new, set()).add(node_id)
        self._cell_of[node_id] = new

    def _candidates(self, position: Position, radius: float) -> Iterable[NodeId]:
        """Ids in every cell overlapping the disk (a superset of the disk)."""
        size = self._cell_size
        x, y = position
        cx0 = math.floor((x - radius) / size)
        cx1 = math.floor((x + radius) / size)
        cy0 = math.floor((y - radius) / size)
        cy1 = math.floor((y + radius) / size)
        cells = self._cells
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                bucket = cells.get((cx, cy))
                if bucket:
                    yield from bucket

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------
    def _cache_store(self, radius: float, node_id: NodeId, result: List[NodeId]) -> None:
        per_radius = self._range_cache.get(radius)
        if per_radius is None:
            if len(self._range_cache) >= _MAX_CACHED_RADII:
                self._range_cache.clear()
                self._cache_entries = 0
            per_radius = self._range_cache[radius] = {}
        if self._cache_entries >= _MAX_CACHED_ENTRIES:
            for entries in self._range_cache.values():
                entries.clear()
            self._cache_entries = 0
        per_radius[node_id] = result
        self._cache_entries += 1

    def _evict_near(self, positions: Tuple[Position, ...], node_id: NodeId) -> None:
        """Incremental invalidation: drop entries whose result may change.

        A cached ``(other, radius)`` entry is stale only if ``node_id``'s
        membership in the ``radius``-disk around ``other`` may have changed,
        i.e. ``other`` lies within ``radius`` of one of ``positions`` (the
        moved node's old/new spot).  The grid gives a cheap superset of
        those nodes; evicting the superset is conservative and keeps every
        surviving entry exact.
        """
        for radius, entries in self._range_cache.items():
            if not entries:
                continue
            if entries.pop(node_id, None) is not None:
                self._cache_entries -= 1
            for position in positions:
                for other in self._candidates(position, radius):
                    if entries.pop(other, None) is not None:
                        self._cache_entries -= 1

    # ------------------------------------------------------------------
    def add_node(self, node_id: NodeId, position: Position) -> None:
        """Place a new node.

        Raises:
            TopologyError: if the node already exists.
        """
        if node_id in self._positions:
            raise TopologyError(f"node {node_id} already in topology")
        position = (float(position[0]), float(position[1]))
        self._positions[node_id] = position
        self._index_add(node_id, position)
        self.version += 1
        self._evict_near((position,), node_id)

    def remove_node(self, node_id: NodeId) -> None:
        """Remove a node (e.g. user left the area)."""
        position = self._positions.pop(node_id, None)
        if position is None:
            raise TopologyError(f"node {node_id} not in topology")
        self._index_remove(node_id)
        self.version += 1
        self._evict_near((position,), node_id)

    def move(self, node_id: NodeId, position: Position) -> None:
        """Update a node's position."""
        old = self._positions.get(node_id)
        if old is None:
            raise TopologyError(f"node {node_id} not in topology")
        position = (float(position[0]), float(position[1]))
        self._positions[node_id] = position
        self._index_move(node_id, position)
        self.version += 1
        self._evict_near((old, position), node_id)

    # ------------------------------------------------------------------
    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def nodes(self) -> List[NodeId]:
        """All node ids currently present."""
        return list(self._positions)

    def position(self, node_id: NodeId) -> Position:
        """Current position of ``node_id``."""
        try:
            return self._positions[node_id]
        except KeyError:
            raise TopologyError(f"node {node_id} not in topology") from None

    def distance(self, a: NodeId, b: NodeId) -> float:
        """Euclidean distance between two nodes."""
        ax, ay = self.position(a)
        bx, by = self.position(b)
        return math.hypot(ax - bx, ay - by)

    def in_range(self, a: NodeId, b: NodeId) -> bool:
        """Whether ``a`` and ``b`` can hear each other (a != b)."""
        if a == b:
            return False
        positions = self._positions
        pa = positions.get(a)
        pb = positions.get(b)
        if pa is None or pb is None:
            return False
        return math.hypot(pa[0] - pb[0], pa[1] - pb[1]) <= self.radio_range

    def within(self, a: NodeId, b: NodeId, radius: float) -> bool:
        """Whether ``a`` and ``b`` are both present and within ``radius``.

        Like :meth:`in_range` with a caller-chosen radius (e.g. the
        carrier-sense range); absent nodes are never within any radius.
        """
        positions = self._positions
        pa = positions.get(a)
        pb = positions.get(b)
        if pa is None or pb is None:
            return False
        return math.hypot(pa[0] - pb[0], pa[1] - pb[1]) <= radius

    def nodes_within(self, node_id: NodeId, radius: float) -> List[NodeId]:
        """All other nodes within ``radius`` of ``node_id``.

        Served from the spatial index (and a per-``(node, radius)`` memo
        with incremental invalidation under mobility).  The returned list
        is the caller's to keep and mutate; element order is node insertion
        order, identical to a brute-force scan of the position dict.
        """
        if node_id not in self._positions:
            return []
        per_radius = self._range_cache.get(radius)
        if per_radius is not None:
            cached = per_radius.get(node_id)
            if cached is not None:
                return cached.copy()
        x, y = self._positions[node_id]
        positions = self._positions
        result = []
        for other in self._candidates((x, y), radius):
            if other == node_id:
                continue
            ox, oy = positions[other]
            if math.hypot(x - ox, y - oy) <= radius:
                result.append(other)
        order = self._order
        result.sort(key=order.__getitem__)
        self._cache_store(radius, node_id, result)
        return result.copy()

    def neighbors(self, node_id: NodeId) -> List[NodeId]:
        """All nodes within radio range of ``node_id``."""
        return self.nodes_within(node_id, self.radio_range)

    # ------------------------------------------------------------------
    def hop_distance(self, source: NodeId, target: NodeId) -> Optional[int]:
        """Fewest hops from source to target, or None if disconnected.

        BFS over the current connectivity graph; used by tests and metrics,
        never by the protocol itself (nodes have no global knowledge).
        """
        if source == target:
            return 0
        visited = {source}
        frontier = [source]
        hops = 0
        while frontier:
            hops += 1
            next_frontier = []
            for node in frontier:
                for neighbor in self.neighbors(node):
                    if neighbor in visited:
                        continue
                    if neighbor == target:
                        return hops
                    visited.add(neighbor)
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return None

    def is_connected(self) -> bool:
        """Whether the current graph is a single connected component."""
        nodes = self.nodes()
        if len(nodes) <= 1:
            return True
        start = nodes[0]
        visited = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in self.neighbors(node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)
        return len(visited) == len(nodes)


def grid_spacing_for_8_neighbors(radio_range: float) -> float:
    """Grid spacing such that diagonal neighbors are just in range.

    With spacing ``s``, the 8 surrounding neighbors lie at distance ``s`` or
    ``s*sqrt(2)``; the next ring starts at ``2s``.  Any ``s`` with
    ``range/2 < s <= range/sqrt(2)`` works; we centre the window.
    """
    return radio_range / 1.6


def build_grid(
    rows: int,
    cols: int,
    radio_range: float = 40.0,
    spacing: Optional[float] = None,
    first_id: NodeId = 0,
) -> Tuple[Topology, List[NodeId]]:
    """A rows×cols grid where each node reaches its 8 surrounding neighbors.

    Returns:
        ``(topology, node_ids)`` with node ids assigned row-major.
    """
    if rows <= 0 or cols <= 0:
        raise TopologyError(f"grid must be non-empty, got {rows}x{cols}")
    if spacing is None:
        spacing = grid_spacing_for_8_neighbors(radio_range)
    if spacing * math.sqrt(2) > radio_range:
        raise TopologyError(
            f"spacing {spacing} too wide for radio range {radio_range}: "
            "diagonal neighbors would be out of range"
        )
    if 2 * spacing <= radio_range:
        raise TopologyError(
            f"spacing {spacing} too tight for radio range {radio_range}: "
            "nodes two columns away would be in range"
        )
    topology = Topology(radio_range)
    node_ids: List[NodeId] = []
    node_id = first_id
    for row in range(rows):
        for col in range(cols):
            topology.add_node(node_id, (col * spacing, row * spacing))
            node_ids.append(node_id)
            node_id += 1
    return topology, node_ids


def center_node(rows: int, cols: int, node_ids: List[NodeId]) -> NodeId:
    """The id of the node at the grid centre (the paper's consumer spot)."""
    return node_ids[(rows // 2) * cols + cols // 2]


def center_subgrid(
    rows: int, cols: int, node_ids: List[NodeId], sub: int = 5
) -> List[NodeId]:
    """Node ids of the central ``sub×sub`` subgrid (§VI-A consumer pool)."""
    sub = min(sub, rows, cols)
    row0 = (rows - sub) // 2
    col0 = (cols - sub) // 2
    picked = []
    for row in range(row0, row0 + sub):
        for col in range(col0, col0 + sub):
            picked.append(node_ids[row * cols + col])
    return picked
