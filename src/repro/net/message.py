"""Frames: the unit of transmission on the broadcast medium.

A frame wraps one protocol message (the ``payload``) with link-level
addressing.  ``receivers`` carries the *intended receiver list* of §III —
``None`` means "all neighbors" (flooding); otherwise only the listed nodes
act on/forward the payload, while every in-range node still overhears it
and may cache its content.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.net.topology import NodeId

#: Byte cost of link/UDP/IP headers per frame (compact model).
FRAME_HEADER_BYTES = 36

#: Payload size of an application-level ack (§V-1: frame id + node id).
ACK_PAYLOAD_BYTES = 12

_frame_ids = itertools.count(1)


@dataclass
class Frame:
    """One link-layer transmission.

    Attributes:
        sender: Current-hop transmitter.
        payload: The protocol message carried (opaque to the link layer).
        payload_size: Serialized payload size in bytes.
        receivers: Intended receivers at this hop, or None for all neighbors.
        needs_ack: Whether the reliability layer expects per-receiver acks.
        kind: Short label for stats ("query", "response", "chunk", "ack"...).
        frame_id: Unique id acked by receivers; fresh per logical send,
            shared across retransmissions of the same frame.
        retransmission: 0 for the first copy, 1.. for retries.
        enqueued_at: Virtual time this copy entered the send path (stamped
            by the face / reliability layer; feeds the per-hop latency
            histogram).
    """

    sender: NodeId
    payload: object
    payload_size: int
    receivers: Optional[FrozenSet[NodeId]] = None
    needs_ack: bool = False
    kind: str = "data"
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    retransmission: int = 0
    enqueued_at: Optional[float] = None

    @property
    def size(self) -> int:
        """Total on-air bytes including frame headers."""
        return self.payload_size + FRAME_HEADER_BYTES

    def addressed_to(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` is an intended receiver of this frame."""
        return self.receivers is None or node_id in self.receivers

    def copy_for_retransmission(self, receivers: FrozenSet[NodeId]) -> "Frame":
        """A retry copy aimed at the not-yet-acked subset (§V-1)."""
        return Frame(
            sender=self.sender,
            payload=self.payload,
            payload_size=self.payload_size,
            receivers=receivers,
            needs_ack=self.needs_ack,
            kind=self.kind,
            frame_id=self.frame_id,
            retransmission=self.retransmission + 1,
        )


@dataclass
class AckMessage:
    """Application-level ack payload (§V-1)."""

    frame_id: int
    acker: NodeId


def make_ack_frame(sender: NodeId, acked_frame: Frame) -> Frame:
    """Build the ack frame a receiver returns for ``acked_frame``."""
    return Frame(
        sender=sender,
        payload=AckMessage(frame_id=acked_frame.frame_id, acker=sender),
        payload_size=ACK_PAYLOAD_BYTES,
        receivers=frozenset({acked_frame.sender}),
        needs_ack=False,
        kind="ack",
    )
