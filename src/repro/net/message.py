"""Frames: the unit of transmission on the broadcast medium.

A frame wraps one protocol message (the ``payload``) with link-level
addressing.  ``receivers`` carries the *intended receiver list* of §III —
``None`` means "all neighbors" (flooding); otherwise only the listed nodes
act on/forward the payload, while every in-range node still overhears it
and may cache its content.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.net.topology import NodeId

#: Byte cost of link/UDP/IP headers per frame (compact model).
FRAME_HEADER_BYTES = 36

#: Payload size of an application-level ack (§V-1: frame id + node id).
ACK_PAYLOAD_BYTES = 12

_frame_ids = itertools.count(1)


def reset_frame_ids(start: int = 1) -> None:
    """Rewind the frame-id space to ``start`` (scenario construction).

    Frame ids need only be unique within one run (acks and retransmit
    bookkeeping never cross simulations); resetting per scenario makes
    them deterministic per run, so fingerprinted runs compare equal
    across processes and schedulers.
    """
    global _frame_ids
    _frame_ids = itertools.count(start)


@dataclass(frozen=True)
class Correlation:
    """Causal correlation ids carried from a payload down to the link layer.

    Frames stamp these onto every link-level trace event (``frame_sent``,
    ``frame_delivered``, ``frame_lost``, ``frame_dropped``, ``retransmit``,
    ``abandon``) so an offline span reconstructor can attribute channel
    activity to the query/response/chunk that caused it.  Payload objects
    opt in by exposing a ``correlation()`` method; the face copies the
    result onto the frame at send time (the link layer itself stays
    protocol-agnostic).
    """

    query_id: Optional[int] = None
    response_id: Optional[int] = None
    round: Optional[int] = None
    chunk_id: Optional[int] = None
    consumer: Optional[NodeId] = None
    hop: Optional[int] = None

    def trace_fields(self) -> Dict[str, object]:
        """The non-empty fields, ready to merge into a trace event."""
        fields: Dict[str, object] = {}
        if self.query_id is not None:
            fields["query_id"] = self.query_id
        if self.response_id is not None:
            fields["response_id"] = self.response_id
        if self.round is not None:
            fields["round"] = self.round
        if self.chunk_id is not None:
            fields["chunk_id"] = self.chunk_id
        if self.consumer is not None:
            fields["consumer"] = self.consumer
        if self.hop is not None:
            fields["hop"] = self.hop
        return fields


def frame_corr_fields(frame: "Frame") -> Dict[str, object]:
    """Correlation fields of a frame, or an empty dict when unstamped."""
    corr = frame.corr
    return corr.trace_fields() if corr is not None else {}


@dataclass
class Frame:
    """One link-layer transmission.

    Attributes:
        sender: Current-hop transmitter.
        payload: The protocol message carried (opaque to the link layer).
        payload_size: Serialized payload size in bytes.
        receivers: Intended receivers at this hop, or None for all neighbors.
        needs_ack: Whether the reliability layer expects per-receiver acks.
        kind: Short label for stats ("query", "response", "chunk", "ack"...).
        frame_id: Unique id acked by receivers; fresh per logical send,
            shared across retransmissions of the same frame.
        retransmission: 0 for the first copy, 1.. for retries.
        enqueued_at: Virtual time this copy entered the send path (stamped
            by the face / reliability layer; feeds the per-hop latency
            histogram).
        corr: Causal correlation ids derived from the payload (stamped by
            the sending face); shared across retransmissions.
    """

    sender: NodeId
    payload: object
    payload_size: int
    receivers: Optional[FrozenSet[NodeId]] = None
    needs_ack: bool = False
    kind: str = "data"
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    retransmission: int = 0
    enqueued_at: Optional[float] = None
    corr: Optional[Correlation] = None

    @property
    def size(self) -> int:
        """Total on-air bytes including frame headers."""
        return self.payload_size + FRAME_HEADER_BYTES

    def addressed_to(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` is an intended receiver of this frame."""
        return self.receivers is None or node_id in self.receivers

    def copy_for_retransmission(self, receivers: FrozenSet[NodeId]) -> "Frame":
        """A retry copy aimed at the not-yet-acked subset (§V-1)."""
        return Frame(
            sender=self.sender,
            payload=self.payload,
            payload_size=self.payload_size,
            receivers=receivers,
            needs_ack=self.needs_ack,
            kind=self.kind,
            frame_id=self.frame_id,
            retransmission=self.retransmission + 1,
            corr=self.corr,
        )


@dataclass
class AckMessage:
    """Application-level ack payload (§V-1)."""

    frame_id: int
    acker: NodeId


def make_ack_frame(sender: NodeId, acked_frame: Frame) -> Frame:
    """Build the ack frame a receiver returns for ``acked_frame``."""
    return Frame(
        sender=sender,
        payload=AckMessage(frame_id=acked_frame.frame_id, acker=sender),
        payload_size=ACK_PAYLOAD_BYTES,
        receivers=frozenset({acked_frame.sender}),
        needs_ack=False,
        kind="ack",
    )
