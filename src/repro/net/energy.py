"""Per-device energy accounting (§VI-A, §VII).

The paper uses message overhead as its energy proxy ("the main consumption
of the communication intensive PDS design comes from wireless network
communication") and lists energy measurement as future work.  This module
implements the standard first-order radio energy model on top of the
per-node byte counters: transmit and receive energy proportional to bytes
moved, plus idle listening power for keeping the radio on to overhear
(the cost §VII's duty-cycling discussion targets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.net.stats import NetworkStats
from repro.net.topology import NodeId

#: Defaults from typical 802.11n power measurements: ~1.3 W transmit,
#: ~1.0 W receive at ~7.2 Mbps effective → J/byte, and ~0.8 W idle.
DEFAULT_TX_J_PER_BYTE = 1.3 * 8 / 7.2e6
DEFAULT_RX_J_PER_BYTE = 1.0 * 8 / 7.2e6
DEFAULT_IDLE_W = 0.8


@dataclass(frozen=True)
class EnergyModel:
    """First-order radio energy parameters."""

    tx_j_per_byte: float = DEFAULT_TX_J_PER_BYTE
    rx_j_per_byte: float = DEFAULT_RX_J_PER_BYTE
    idle_w: float = DEFAULT_IDLE_W

    def node_energy_j(
        self,
        tx_bytes: int,
        rx_bytes: int,
        duration_s: float,
    ) -> float:
        """Total joules spent by one node over ``duration_s``."""
        return (
            tx_bytes * self.tx_j_per_byte
            + rx_bytes * self.rx_j_per_byte
            + duration_s * self.idle_w
        )


@dataclass(frozen=True)
class EnergyReport:
    """Per-node and aggregate energy over a simulation window."""

    per_node_j: Dict[NodeId, float]
    duration_s: float

    @property
    def total_j(self) -> float:
        return sum(self.per_node_j.values())

    @property
    def mean_j(self) -> float:
        if not self.per_node_j:
            return 0.0
        return self.total_j / len(self.per_node_j)

    def top_consumers(self, count: int = 5):
        """The ``count`` most energy-hungry nodes (relays, typically)."""
        ranked = sorted(self.per_node_j.items(), key=lambda kv: -kv[1])
        return ranked[:count]


def energy_report(
    stats: NetworkStats,
    duration_s: float,
    model: EnergyModel = EnergyModel(),
) -> EnergyReport:
    """Build a report from the medium's per-node byte counters."""
    nodes = set(stats.tx_bytes_by_node) | set(stats.rx_bytes_by_node)
    per_node = {
        node: model.node_energy_j(
            stats.tx_bytes_by_node.get(node, 0),
            stats.rx_bytes_by_node.get(node, 0),
            duration_s,
        )
        for node in nodes
    }
    return EnergyReport(per_node_j=per_node, duration_s=duration_s)
