"""Application-level leaky bucket pacing (§V-2).

The Android UDP send API accepts packets far faster than the MAC broadcast
rate can drain them, so the OS send buffer overflows and *silently*
discards messages — the root cause of the 14% raw reception rate.  PDS
paces its own sending with a leaky bucket: at most ``BucketCapacity``
un-leaked bytes are allowed toward the OS at once, refilled at
``LeakingRate``.  The application's own backlog waits in an app-side queue
(the app controls its own data, unlike the opaque OS buffer), so pacing
never loses frames by itself; loss still occurs in the OS buffer when the
bucket is configured too aggressively — exactly the behaviour the paper's
parameter exploration measures (§V-4):

* too large a ``BucketCapacity`` lets a burst overflow the OS buffer;
* too high a ``LeakingRate`` exceeds the MAC drain rate and builds up the
  OS buffer until it overflows.

The paper's best operating point is 300 KB capacity, 4.5 Mbps leak rate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.errors import ConfigurationError
from repro.net.message import Frame
from repro.sim.simulator import Simulator

#: Best BucketCapacity found in §V-4.
DEFAULT_BUCKET_CAPACITY = 300 * 1024

#: Best LeakingRate found in §V-4.
DEFAULT_LEAK_RATE_BPS = 4.5e6


@dataclass(frozen=True)
class LeakyBucketConfig:
    """Pacing knobs (BucketCapacity / LeakingRate in the paper)."""

    capacity_bytes: int = DEFAULT_BUCKET_CAPACITY
    leak_rate_bps: float = DEFAULT_LEAK_RATE_BPS

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("bucket capacity must be positive")
        if self.leak_rate_bps <= 0:
            raise ConfigurationError("leak rate must be positive")


class LeakyBucket:
    """Token-bucket pacer releasing frames to a sink callback.

    Tokens are bytes: the bucket starts full at ``capacity_bytes`` and
    refills at ``leak_rate_bps``.  Releasing a frame consumes its size in
    tokens, so bursts are bounded by the capacity and the sustained rate by
    the leak rate.  Frames the tokens cannot yet cover wait in an unbounded
    app-side FIFO.

    The sink (usually ``Radio.send``) may return False to signal that the
    OS buffer silently dropped the frame; ``on_drop`` is then invoked so
    the reliability layer can schedule a retransmission.
    """

    def __init__(
        self,
        sim: Simulator,
        sink: Callable[[Frame], object],
        config: Optional[LeakyBucketConfig] = None,
        on_drop: Optional[Callable[[Frame], None]] = None,
    ) -> None:
        self.sim = sim
        self.sink = sink
        self.config = config if config is not None else LeakyBucketConfig()
        self.on_drop = on_drop
        self._queue: Deque[Frame] = deque()
        self._queued_bytes = 0
        self._tokens = float(self.config.capacity_bytes)
        self._last_refill = sim.now
        self._wakeup_pending = False
        self.dropped_frames = 0

    # ------------------------------------------------------------------
    @property
    def queued_bytes(self) -> int:
        """Bytes currently waiting in the app-side queue."""
        return self._queued_bytes

    @property
    def queue_length(self) -> int:
        """Frames currently waiting in the app-side queue."""
        return len(self._queue)

    def queued_frames(self):
        """Snapshot of the frames currently waiting (read-only use)."""
        return list(self._queue)

    def tokens(self) -> float:
        """Current token balance in bytes (after refill)."""
        self._refill()
        return self._tokens

    # ------------------------------------------------------------------
    def offer(self, frame: Frame) -> bool:
        """Submit a frame for paced sending.  Always accepted."""
        self._queue.append(frame)
        self._queued_bytes += frame.size
        self._drain()
        return True

    def _refill(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(
                float(self.config.capacity_bytes),
                self._tokens + elapsed * self.config.leak_rate_bps / 8.0,
            )
            self._last_refill = now

    def _drain(self) -> None:
        self._refill()
        while self._queue:
            head = self._queue[0]
            # A frame larger than the whole bucket is released at the
            # full-bucket moment (tokens may go negative, preserving the
            # long-run rate); otherwise it could never be sent.
            need = min(float(head.size), float(self.config.capacity_bytes))
            if self._tokens < need:
                break
            self._queue.popleft()
            self._queued_bytes -= head.size
            self._tokens -= head.size
            accepted = self.sink(head)
            if accepted is False:
                self.dropped_frames += 1
                if self.on_drop is not None:
                    self.on_drop(head)
        if self._queue and not self._wakeup_pending:
            head = self._queue[0]
            need = min(float(head.size), float(self.config.capacity_bytes))
            deficit = need - self._tokens
            delay = deficit * 8.0 / self.config.leak_rate_bps
            self._wakeup_pending = True
            self.sim.schedule(max(delay, 1e-6), self._wakeup)

    def _wakeup(self) -> None:
        self._wakeup_pending = False
        self._drain()

    def remove(self, frame: Frame) -> bool:
        """Withdraw a specific queued frame (by object identity).

        Returns:
            True if the frame was still queued and has been removed.
        """
        for queued in self._queue:
            if queued is frame:
                self._queue.remove(queued)
                self._queued_bytes -= frame.size
                return True
        return False

    def flush(self) -> None:
        """Drop everything still queued (node left the network)."""
        self._queue.clear()
        self._queued_bytes = 0
