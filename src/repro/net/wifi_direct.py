"""Wi-Fi Direct multi-group topologies (§V, §VII).

The paper's deployment substrate: commodity phones form single-hop Wi-Fi
Direct groups (one group owner + clients); selected *bridge* devices sit
within reach of two adjacent group owners and interconnect the groups into
a multi-hop network.  PDS runs unchanged on top — the same one-hop UDP
broadcast with intended-receiver lists — but traffic between groups must
funnel through the bridges, the load concern §VII raises.

This module generates such topologies geometrically: group owners on a
grid spaced beyond radio range, clients scattered within their group's
radius, and one bridge midway between each pair of adjacent owners.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import TopologyError
from repro.net.topology import NodeId, Topology


@dataclass
class WifiDirectLayout:
    """A generated multi-group topology plus its role assignment."""

    topology: Topology
    group_owners: List[NodeId]
    clients: Dict[NodeId, List[NodeId]] = field(default_factory=dict)
    bridges: List[NodeId] = field(default_factory=list)

    def all_nodes(self) -> List[NodeId]:
        nodes = list(self.group_owners)
        for members in self.clients.values():
            nodes.extend(members)
        nodes.extend(self.bridges)
        return nodes

    def group_of(self, node_id: NodeId) -> NodeId:
        """The group owner whose group a client belongs to."""
        for owner, members in self.clients.items():
            if node_id == owner or node_id in members:
                return owner
        raise TopologyError(f"node {node_id} is not an owner or client")


def build_wifi_direct_topology(
    groups_x: int,
    groups_y: int,
    clients_per_group: int,
    rng: random.Random,
    radio_range: float = 40.0,
    owner_spacing: float = 70.0,
) -> WifiDirectLayout:
    """Generate a ``groups_x × groups_y`` multi-group network.

    Group owners are spaced beyond radio range (groups do not hear each
    other directly); clients are placed within ``0.6 × radio_range`` of
    their owner; a bridge sits midway between each horizontally/vertically
    adjacent owner pair, in range of both.

    Raises:
        TopologyError: if the spacing cannot both separate owners and let
            a midway bridge reach them.
    """
    if groups_x < 1 or groups_y < 1:
        raise TopologyError("need at least one group in each dimension")
    if owner_spacing <= radio_range:
        raise TopologyError(
            "owner_spacing must exceed radio_range (separate groups)"
        )
    if owner_spacing / 2 > radio_range:
        raise TopologyError(
            "owner_spacing/2 must be within radio_range (bridge reach)"
        )

    topology = Topology(radio_range)
    next_id = 0

    owners: List[NodeId] = []
    owner_positions: Dict[NodeId, Tuple[float, float]] = {}
    for gy in range(groups_y):
        for gx in range(groups_x):
            position = (gx * owner_spacing, gy * owner_spacing)
            topology.add_node(next_id, position)
            owners.append(next_id)
            owner_positions[next_id] = position
            next_id += 1

    clients: Dict[NodeId, List[NodeId]] = {}
    client_radius = 0.6 * radio_range
    for owner in owners:
        ox, oy = owner_positions[owner]
        members = []
        for _ in range(clients_per_group):
            angle = rng.uniform(0, 2 * math.pi)
            distance = rng.uniform(0, client_radius)
            position = (
                ox + distance * math.cos(angle),
                oy + distance * math.sin(angle),
            )
            topology.add_node(next_id, position)
            members.append(next_id)
            next_id += 1
        clients[owner] = members

    bridges: List[NodeId] = []
    for gy in range(groups_y):
        for gx in range(groups_x):
            owner = owners[gy * groups_x + gx]
            ox, oy = owner_positions[owner]
            if gx + 1 < groups_x:
                topology.add_node(next_id, (ox + owner_spacing / 2, oy))
                bridges.append(next_id)
                next_id += 1
            if gy + 1 < groups_y:
                topology.add_node(next_id, (ox, oy + owner_spacing / 2))
                bridges.append(next_id)
                next_id += 1

    return WifiDirectLayout(
        topology=topology,
        group_owners=owners,
        clients=clients,
        bridges=bridges,
    )
