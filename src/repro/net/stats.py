"""Transmission statistics: the message-overhead metric of §VI-A.

The paper's *message overhead* is "the number of bytes of all messages".
We count every frame put on the air — data, retransmissions and acks — and
also keep per-kind breakdowns for the ablation benches.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class NetworkStats:
    """Mutable counters shared by all radios on one medium."""

    frames_sent: int = 0
    bytes_sent: int = 0
    frames_delivered: int = 0
    frames_lost_collision: int = 0
    frames_lost_random: int = 0
    frames_lost_busy_receiver: int = 0
    frames_dropped_buffer: int = 0
    frames_dropped_bucket: int = 0
    bytes_by_kind: Counter = field(default_factory=Counter)
    frames_by_kind: Counter = field(default_factory=Counter)
    #: Per-node counters feeding the energy model (repro.net.energy).
    tx_bytes_by_node: Counter = field(default_factory=Counter)
    rx_bytes_by_node: Counter = field(default_factory=Counter)

    def record_transmission(self, kind: str, size: int, sender=None) -> None:
        """Account one frame put on the air."""
        self.frames_sent += 1
        self.bytes_sent += size
        self.bytes_by_kind[kind] += size
        self.frames_by_kind[kind] += 1
        if sender is not None:
            self.tx_bytes_by_node[sender] += size

    def record_reception(self, receiver, size: int) -> None:
        """Account one successful frame delivery at a node."""
        self.rx_bytes_by_node[receiver] += size

    def overhead_bytes(self, include_acks: bool = True) -> int:
        """Total transmitted bytes (the paper's message overhead)."""
        if include_acks:
            return self.bytes_sent
        return self.bytes_sent - self.bytes_by_kind.get("ack", 0)

    def loss_ratio(self) -> float:
        """Fraction of per-receiver deliveries that were lost on the air."""
        lost = (
            self.frames_lost_collision
            + self.frames_lost_random
            + self.frames_lost_busy_receiver
        )
        attempts = self.frames_delivered + lost
        return lost / attempts if attempts else 0.0

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict snapshot for reporting."""
        return {
            "frames_sent": self.frames_sent,
            "bytes_sent": self.bytes_sent,
            "frames_delivered": self.frames_delivered,
            "frames_lost_collision": self.frames_lost_collision,
            "frames_lost_random": self.frames_lost_random,
            "frames_lost_busy_receiver": self.frames_lost_busy_receiver,
            "frames_dropped_buffer": self.frames_dropped_buffer,
            "frames_dropped_bucket": self.frames_dropped_bucket,
            "loss_ratio": self.loss_ratio(),
        }
