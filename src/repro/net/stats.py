"""Transmission statistics: the message-overhead metric of §VI-A.

The paper's *message overhead* is "the number of bytes of all messages".
We count every frame put on the air — data, retransmissions and acks — and
also keep per-kind breakdowns for the ablation benches.

The scalar counters are backed by a :class:`repro.obs.metrics.MetricsRegistry`
(``net.*`` namespace) so traced/profiled runs surface them alongside the
frame-size and per-hop-latency histograms, while the attribute API
(``stats.frames_lost_collision += 1`` etc.) stays exactly as before.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Union

from repro.obs.metrics import MetricsRegistry

#: Frame-size histogram buckets (bytes): acks up to chunk-sized frames.
FRAME_SIZE_BUCKETS = (64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576)

Number = Union[int, float]


def _counter_property(attr: str):
    """An int-like attribute delegating to a registry counter."""

    def getter(self: "NetworkStats") -> Number:
        return getattr(self, attr).value

    def setter(self: "NetworkStats", value: Number) -> None:
        getattr(self, attr).value = value

    return property(getter, setter)


class NetworkStats:
    """Mutable counters shared by all radios on one medium."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._frames_sent = self.registry.counter("net.frames_sent")
        self._bytes_sent = self.registry.counter("net.bytes_sent")
        self._frames_delivered = self.registry.counter("net.frames_delivered")
        self._frames_lost_collision = self.registry.counter(
            "net.frames_lost_collision"
        )
        self._frames_lost_random = self.registry.counter("net.frames_lost_random")
        self._frames_lost_busy_receiver = self.registry.counter(
            "net.frames_lost_busy_receiver"
        )
        self._frames_dropped_buffer = self.registry.counter(
            "net.frames_dropped_buffer"
        )
        self._frames_dropped_bucket = self.registry.counter(
            "net.frames_dropped_bucket"
        )
        self._frame_sizes = self.registry.histogram(
            "net.frame_size_bytes", FRAME_SIZE_BUCKETS
        )
        self._response_sizes = self.registry.histogram(
            "net.response_size_bytes", FRAME_SIZE_BUCKETS
        )
        self.bytes_by_kind: Counter = Counter()
        self.frames_by_kind: Counter = Counter()
        #: Per-node counters feeding the energy model (repro.net.energy).
        self.tx_bytes_by_node: Counter = Counter()
        self.rx_bytes_by_node: Counter = Counter()

    frames_sent = _counter_property("_frames_sent")
    bytes_sent = _counter_property("_bytes_sent")
    frames_delivered = _counter_property("_frames_delivered")
    frames_lost_collision = _counter_property("_frames_lost_collision")
    frames_lost_random = _counter_property("_frames_lost_random")
    frames_lost_busy_receiver = _counter_property("_frames_lost_busy_receiver")
    frames_dropped_buffer = _counter_property("_frames_dropped_buffer")
    frames_dropped_bucket = _counter_property("_frames_dropped_bucket")

    def record_transmission(self, kind: str, size: int, sender=None) -> None:
        """Account one frame put on the air."""
        self._frames_sent.value += 1
        self._bytes_sent.value += size
        self.bytes_by_kind[kind] += size
        self.frames_by_kind[kind] += 1
        self._frame_sizes.observe(size)
        if "response" in kind:
            self._response_sizes.observe(size)
        if sender is not None:
            self.tx_bytes_by_node[sender] += size

    def record_reception(self, receiver, size: int) -> None:
        """Account one successful frame delivery at a node."""
        self.rx_bytes_by_node[receiver] += size

    # Hot-path helpers: the medium calls these once per delivery attempt,
    # so they bump the backing counters directly instead of going through
    # the property descriptors.
    def record_delivery(self, receiver, size: int) -> None:
        """Account one delivered frame copy (counter + per-node bytes)."""
        self._frames_delivered.value += 1
        self.rx_bytes_by_node[receiver] += size

    def record_loss(self, reason: str) -> None:
        """Account one lost frame copy (``collision``/``random``/``busy_receiver``)."""
        getattr(self, f"_frames_lost_{reason}").value += 1

    def overhead_bytes(self, include_acks: bool = True) -> int:
        """Total transmitted bytes (the paper's message overhead)."""
        if include_acks:
            return self.bytes_sent
        return self.bytes_sent - self.bytes_by_kind.get("ack", 0)

    def loss_ratio(self) -> float:
        """Fraction of per-receiver deliveries that were lost on the air."""
        lost = (
            self.frames_lost_collision
            + self.frames_lost_random
            + self.frames_lost_busy_receiver
        )
        attempts = self.frames_delivered + lost
        return lost / attempts if attempts else 0.0

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict snapshot for reporting.

        Includes the per-kind breakdowns (nested dicts) so benches read
        them from here instead of reaching into the live counters.
        """
        return {
            "frames_sent": self.frames_sent,
            "bytes_sent": self.bytes_sent,
            "frames_delivered": self.frames_delivered,
            "frames_lost_collision": self.frames_lost_collision,
            "frames_lost_random": self.frames_lost_random,
            "frames_lost_busy_receiver": self.frames_lost_busy_receiver,
            "frames_dropped_buffer": self.frames_dropped_buffer,
            "frames_dropped_bucket": self.frames_dropped_bucket,
            "loss_ratio": self.loss_ratio(),
            "bytes_by_kind": dict(self.bytes_by_kind),
            "frames_by_kind": dict(self.frames_by_kind),
        }

    def __repr__(self) -> str:
        return (
            f"NetworkStats(frames_sent={self.frames_sent}, "
            f"bytes_sent={self.bytes_sent}, "
            f"frames_delivered={self.frames_delivered})"
        )
