"""Faces: the uniform network interface a device sees (§V).

PDS is an application-level design that treats every underlying network or
link technology as a *face*.  This module provides the broadcast face used
by both the prototype model and the multi-hop simulation: it composes the
leaky bucket (pacing), the reliability layer (per-hop ack/retransmission)
and the radio (OS buffer + CSMA) into one send/receive interface.

Send path:    protocol → ReliabilitySender → LeakyBucket → Radio → Medium
Receive path: Medium → Radio → (ack handling / dedup) → protocol upcall
"""

from __future__ import annotations

import random
from typing import Callable, FrozenSet, List, Optional

from repro.net.leaky_bucket import LeakyBucket, LeakyBucketConfig
from repro.net.medium import BroadcastMedium
from repro.net.message import AckMessage, Frame
from repro.net.radio import Radio, RadioConfig
from repro.net.reliability import (
    ReliabilityConfig,
    ReliabilityReceiver,
    ReliabilitySender,
)
from repro.net.topology import NodeId
from repro.sim.simulator import Simulator

#: Callback signature for payload delivery: (frame, addressed_to_me).
ReceiveCallback = Callable[[Frame, bool], None]


class BroadcastFace:
    """One-hop UDP-broadcast face with pacing and per-hop reliability."""

    def __init__(
        self,
        sim: Simulator,
        medium: BroadcastMedium,
        node_id: NodeId,
        rng: random.Random,
        radio_config: Optional[RadioConfig] = None,
        bucket_config: Optional[LeakyBucketConfig] = None,
        reliability_config: Optional[ReliabilityConfig] = None,
        use_leaky_bucket: bool = True,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.node_id = node_id
        self.radio = Radio(sim, medium, node_id, rng, radio_config)
        self.use_leaky_bucket = use_leaky_bucket
        self.bucket = LeakyBucket(
            sim, self.radio.send, bucket_config, on_drop=self._on_os_drop
        )
        self.sender = ReliabilitySender(
            sim,
            self._submit,
            reliability_config,
            airtime=medium.airtime,
            cancel_queued=self._cancel_queued,
        )
        self.receiver = ReliabilityReceiver(node_id, self._send_ack)
        self._receive_callback: Optional[ReceiveCallback] = None
        self.radio.on_receive(self._on_frame)
        self.radio.on_sent(self.sender.frame_transmitted)

    # ------------------------------------------------------------------
    def on_receive(self, callback: ReceiveCallback) -> None:
        """Register the protocol upcall for every newly heard payload."""
        self._receive_callback = callback

    def neighbors(self) -> List[NodeId]:
        """Current one-hop neighbors (hello-protocol knowledge)."""
        return self.medium.topology.neighbors(self.node_id)

    def send(
        self,
        payload: object,
        payload_size: int,
        receivers: Optional[FrozenSet[NodeId]] = None,
        kind: str = "data",
        reliable: bool = True,
    ) -> Frame:
        """Transmit a protocol message.

        Args:
            receivers: Intended receiver set, or None to address all
                neighbors (flooding).  Every in-range node overhears the
                frame either way.
            reliable: Whether the per-hop ack/retransmission machinery
                should cover this frame.  Acks are expected from the
                explicit receiver set, or from all current neighbors when
                flooding.
        """
        # Duck-typed correlation: protocol messages expose `correlation()`
        # with the causal ids to stamp on link-level trace events; the net
        # layer stays ignorant of concrete message types.
        correlate = getattr(payload, "correlation", None)
        frame = Frame(
            sender=self.node_id,
            payload=payload,
            payload_size=payload_size,
            receivers=receivers,
            kind=kind,
            enqueued_at=self.sim.now,
            corr=correlate() if callable(correlate) else None,
        )
        if reliable:
            ack_from = receivers if receivers is not None else frozenset(self.neighbors())
        else:
            ack_from = frozenset()
        self.sender.send(frame, ack_from)
        return frame

    def shutdown(self) -> None:
        """Tear the face down (node left the area)."""
        self.sender.cancel_all()
        self.bucket.flush()
        self.radio.shutdown()

    def observe_state(self) -> dict:
        """Flight-recorder view: queue depths along the send path."""
        return {
            "sendq": self.bucket.queue_length,
            "sendq_bytes": self.bucket.queued_bytes,
            "radioq": self.radio.queue_length,
            "retx": self.sender.pending_count,
        }

    # ------------------------------------------------------------------
    def _submit(self, frame: Frame) -> None:
        if self.use_leaky_bucket:
            self.bucket.offer(frame)
        else:
            accepted = self.radio.send(frame)
            if not accepted:
                self._on_os_drop(frame)

    def _cancel_queued(self, frame: Frame) -> None:
        if not self.bucket.remove(frame):
            self.radio.remove(frame)

    def _on_os_drop(self, frame: Frame) -> None:
        # The OS buffer silently discarded the frame; let the reliability
        # layer schedule a retransmission if the frame is covered.
        self.sender.frame_dropped(frame)

    def _send_ack(self, ack_frame: Frame) -> None:
        # Acks bypass the bucket: they are tiny and pacing them behind
        # queued data frames would defeat the retransmission timeout.
        self.radio.send(ack_frame, priority=True)

    def _on_frame(self, frame: Frame) -> None:
        payload = frame.payload
        if isinstance(payload, AckMessage):
            self.sender.ack_received(payload)
            return
        is_new = self.receiver.accept(frame)
        if not is_new:
            return
        if self._receive_callback is not None:
            self._receive_callback(frame, frame.addressed_to(self.node_id))
