"""Per-hop ack/retransmission (§V-1).

After transmitting a frame whose ``needs_ack`` flag is set, the sender
waits ``RetrTimeout`` for application-level acks from every intended
receiver.  If some are missing it retransmits the frame with the receiver
list rewritten to the not-yet-acked subset, up to ``MaxRetrTime`` times.

The paper's best operating point is RetrTimeout = 0.2 s, MaxRetrTime = 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Set

from repro.errors import ConfigurationError
from repro.net.message import AckMessage, Frame, frame_corr_fields, make_ack_frame
from repro.net.topology import NodeId
from repro.sim.event import Event
from repro.sim.simulator import Simulator

#: Best RetrTimeout found in §V-4.
DEFAULT_RETR_TIMEOUT_S = 0.2

#: Best MaxRetrTime found in §V-4.
DEFAULT_MAX_RETRANSMISSIONS = 4


@dataclass(frozen=True)
class ReliabilityConfig:
    """Ack/retransmission knobs (RetrTimeout / MaxRetrTime in the paper).

    The paper tuned RetrTimeout with 1.5 KB packets whose airtime is
    negligible; with chunk-sized frames the effective timeout must also
    cover the frame's own airtime (otherwise every chunk is retransmitted
    spuriously while its ack is still contending for the channel), so the
    sender adds a per-frame airtime allowance and backs off exponentially
    on successive retries.
    """

    retr_timeout_s: float = DEFAULT_RETR_TIMEOUT_S
    max_retransmissions: int = DEFAULT_MAX_RETRANSMISSIONS
    backoff_factor: float = 2.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.retr_timeout_s <= 0:
            raise ConfigurationError("RetrTimeout must be positive")
        if self.max_retransmissions < 0:
            raise ConfigurationError("MaxRetrTime must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")


class _PendingAck:
    """Book-keeping for one frame awaiting acks."""

    __slots__ = ("frame", "waiting", "retries_left", "timer_event")

    def __init__(self, frame: Frame, waiting: Set[NodeId], retries_left: int) -> None:
        self.frame = frame
        self.waiting = waiting
        self.retries_left = retries_left
        self.timer_event: Optional[Event] = None


class ReliabilitySender:
    """Sender half: retransmits until acked or retries exhausted.

    Args:
        sim: The simulator (for timers).
        submit: Callable that actually sends a frame (usually the leaky
            bucket's ``offer``); retransmissions re-enter the same path.
        config: Timeout/retry knobs.
    """

    def __init__(
        self,
        sim: Simulator,
        submit: Callable[[Frame], object],
        config: Optional[ReliabilityConfig] = None,
        airtime: Optional[Callable[[int], float]] = None,
        cancel_queued: Optional[Callable[[Frame], None]] = None,
    ) -> None:
        self.sim = sim
        self.submit = submit
        self.config = config if config is not None else ReliabilityConfig()
        #: Estimated channel time of a frame of N bytes (for timeouts).
        self.airtime = airtime if airtime is not None else (lambda size: 0.0)
        #: Hook to withdraw a queued-but-untransmitted retry once acked.
        self.cancel_queued = cancel_queued
        self._pending: Dict[int, _PendingAck] = {}
        self.retransmitted_frames = 0
        self.abandoned_frames = 0

    @property
    def pending_count(self) -> int:
        """Frames awaiting acknowledgement (retransmission candidates)."""
        return len(self._pending)

    def _timeout_for(self, frame: Frame) -> float:
        # The airtime allowance covers the ack's own channel-access delay:
        # while chunk-sized frames saturate the channel, an ack routinely
        # waits several frame times for a CSMA slot.  For the paper's
        # 1.5 KB packets this term is negligible and the timeout is the
        # configured RetrTimeout, as measured in §V-4.
        base = self.config.retr_timeout_s + 8.0 * self.airtime(frame.size)
        return base * (self.config.backoff_factor**frame.retransmission)

    # ------------------------------------------------------------------
    def send(self, frame: Frame, ack_from: FrozenSet[NodeId]) -> None:
        """Send ``frame``, expecting acks from ``ack_from``.

        With reliability disabled, or an empty ack set, the frame is sent
        exactly once.
        """
        needs_ack = (
            self.config.enabled
            and bool(ack_from)
            and self.config.max_retransmissions > 0
        )
        frame.needs_ack = needs_ack
        if needs_ack:
            self._pending[frame.frame_id] = _PendingAck(
                frame, set(ack_from), self.config.max_retransmissions
            )
        self.submit(frame)

    def frame_transmitted(self, frame: Frame) -> None:
        """Radio upcall: the frame is on the air; start the ack timer."""
        pending = self._pending.get(frame.frame_id)
        if pending is None or not frame.needs_ack:
            return
        if pending.timer_event is not None:
            self.sim.cancel(pending.timer_event)
        pending.timer_event = self.sim.schedule(
            self._timeout_for(frame), self._timeout, frame.frame_id
        )

    def frame_dropped(self, frame: Frame) -> None:
        """The OS buffer silently dropped this frame before transmission.

        Without this hook the ack timer would never start (it normally
        starts when the radio reports the frame on the air) and the frame
        would never be retransmitted.  Treat the drop like a lost copy:
        arm the timeout so the normal retry path runs.
        """
        pending = self._pending.get(frame.frame_id)
        if pending is None or not frame.needs_ack:
            return
        if pending.timer_event is None:
            pending.timer_event = self.sim.schedule(
                self._timeout_for(frame), self._timeout, frame.frame_id
            )

    def ack_received(self, ack: AckMessage) -> None:
        """Process an ack heard from the air."""
        pending = self._pending.get(ack.frame_id)
        if pending is None:
            return
        pending.waiting.discard(ack.acker)
        if not pending.waiting:
            if pending.timer_event is not None:
                self.sim.cancel(pending.timer_event)
            del self._pending[ack.frame_id]
            # A retry copy may still sit in the pacing/OS queues; withdraw
            # it rather than waste channel time on a frame nobody needs.
            if self.cancel_queued is not None and pending.frame.retransmission > 0:
                self.cancel_queued(pending.frame)

    def _timeout(self, frame_id: int) -> None:
        pending = self._pending.get(frame_id)
        if pending is None:
            return
        pending.timer_event = None
        if not pending.waiting:
            del self._pending[frame_id]
            return
        if pending.retries_left <= 0:
            self.abandoned_frames += 1
            del self._pending[frame_id]
            trace = self.sim.trace
            if trace.enabled:
                trace.emit(
                    "abandon",
                    node=pending.frame.sender,
                    frame_id=frame_id,
                    frame_kind=pending.frame.kind,
                    unacked=len(pending.waiting),
                    **frame_corr_fields(pending.frame),
                )
            return
        pending.retries_left -= 1
        self.retransmitted_frames += 1
        retry = pending.frame.copy_for_retransmission(frozenset(pending.waiting))
        retry.enqueued_at = self.sim.now
        pending.frame = retry
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(
                "retransmit",
                node=retry.sender,
                frame_id=frame_id,
                frame_kind=retry.kind,
                retx=retry.retransmission,
                waiting=len(pending.waiting),
                **frame_corr_fields(retry),
            )
        self.submit(retry)
        # Arm a *fallback* deadline now so a retry stuck in deep queues
        # cannot stall the chain — but make it generous (5×): the accurate
        # deadline is re-armed by frame_transmitted when the retry airs,
        # and a tight submit-time timer would fire while the retry is
        # still queued under congestion, snowballing spurious copies.
        pending.timer_event = self.sim.schedule(
            5.0 * self._timeout_for(retry), self._timeout, frame_id
        )

    def cancel_frame(self, frame_id: int) -> None:
        """Withdraw one outstanding frame (caller suppressed it)."""
        pending = self._pending.pop(frame_id, None)
        if pending is not None and pending.timer_event is not None:
            self.sim.cancel(pending.timer_event)

    def cancel_all(self) -> None:
        """Abandon all outstanding frames (node left)."""
        for pending in self._pending.values():
            if pending.timer_event is not None:
                self.sim.cancel(pending.timer_event)
        self._pending.clear()

    @property
    def outstanding(self) -> int:
        """Number of frames still awaiting acks."""
        return len(self._pending)


class ReliabilityReceiver:
    """Receiver half: acks addressed frames, suppresses duplicate upcalls.

    Retransmissions share the original ``frame_id``; the receiver remembers
    recently seen ids so the device processes each logical frame once while
    still re-acking duplicates (the first ack may have been lost).
    """

    def __init__(
        self,
        node_id: NodeId,
        send_ack: Callable[[Frame], None],
        history_limit: int = 4096,
    ) -> None:
        self.node_id = node_id
        self.send_ack = send_ack
        self.history_limit = history_limit
        self._seen: Dict[int, None] = {}

    def accept(self, frame: Frame) -> bool:
        """Handle link-level duties; returns True if payload is new.

        Acks are sent only for frames explicitly addressed to this node;
        overheard frames are never acked but are still reported (once) so
        the device can cache their content.
        """
        if frame.needs_ack and frame.receivers is not None and frame.addressed_to(
            self.node_id
        ):
            self.send_ack(make_ack_frame(self.node_id, frame))
        if frame.frame_id in self._seen:
            return False
        self._seen[frame.frame_id] = None
        if len(self._seen) > self.history_limit:
            # Drop the oldest half; dict preserves insertion order.
            for key in list(self._seen)[: self.history_limit // 2]:
                del self._seen[key]
        return True
