"""The shared broadcast wireless medium.

Replaces the paper's NS-3 802.11 stack with an event-driven model that
reproduces the effects the evaluation depends on:

* **airtime** — a transmission occupies the channel for
  ``preamble + bits / broadcast_rate`` seconds;
* **carrier sense** — radios ask :meth:`channel_busy` before transmitting
  and defer with random backoff while any sensed node is on the air.
  Physical carrier sense reaches ``carrier_sense_factor`` × the
  communication range (energy detection works below decoding SNR), which
  suppresses most hidden terminals, as on real hardware;
* **hidden-terminal collisions** — a receiver loses a frame when another
  in-range transmission overlaps it in time;
* **half-duplex receivers** — a node transmitting during a frame's airtime
  cannot receive it;
* **base loss** — a small independent per-delivery loss probability models
  fading and residual interference;
* **overhearing** — every surviving delivery goes to *all* in-range nodes,
  not only addressed ones, which is what enables opportunistic caching.

Collisions and half-duplex conflicts are detected *event-driven*: each
transmission start marks the overlapping receptions it ruins, so delivery
is O(1) instead of scanning transmission history.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net.message import Frame, frame_corr_fields
from repro.net.stats import NetworkStats
from repro.net.topology import NodeId, Topology
from repro.sim.simulator import Simulator

#: MAC broadcast data rate (802.11n 20 MHz broadcast ≈ 7.2 Mbps, §V-2).
DEFAULT_BROADCAST_RATE_BPS = 7.2e6

#: Fixed per-frame channel time (preamble, MAC framing, DIFS...).
DEFAULT_PREAMBLE_S = 0.3e-3

#: Default independent per-delivery loss probability.
DEFAULT_BASE_LOSS = 0.02

#: Physical carrier sense reaches beyond the communication range in 802.11.
DEFAULT_CARRIER_SENSE_FACTOR = 2.0


@dataclass
class _Reception:
    """One pending frame delivery at one receiver."""

    sender: NodeId
    start: float
    end: float
    ruined_by_collision: bool = False
    ruined_by_busy: bool = False


@dataclass
class _Transmission:
    """One in-flight transmission."""

    sender: NodeId
    start: float
    end: float
    frame: Frame
    receptions: Dict[NodeId, _Reception] = field(default_factory=dict)


class BroadcastMedium:
    """Event-driven shared-channel model with collisions and overhearing."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        rng: random.Random,
        stats: Optional[NetworkStats] = None,
        broadcast_rate_bps: float = DEFAULT_BROADCAST_RATE_BPS,
        preamble_s: float = DEFAULT_PREAMBLE_S,
        base_loss: float = DEFAULT_BASE_LOSS,
        carrier_sense_factor: float = DEFAULT_CARRIER_SENSE_FACTOR,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.rng = rng
        # Default stats register their counters on the simulator's metrics
        # registry so one `sim.metrics` snapshot covers the whole stack.
        self.stats = stats if stats is not None else NetworkStats(sim.metrics)
        self._latency_hist = self.stats.registry.histogram(
            "net.per_hop_latency_s",
            (0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0),
        )
        self.broadcast_rate_bps = broadcast_rate_bps
        self.preamble_s = preamble_s
        self.base_loss = base_loss
        self.carrier_sense_factor = carrier_sense_factor
        self._receivers: Dict[NodeId, Callable[[Frame], None]] = {}
        #: Transmissions whose airtime has not ended yet.
        self._active: List[_Transmission] = []
        #: Earliest end time among ``_active`` — lets carrier-sense calls
        #: skip the prune scan while every transmission is still on the air.
        self._active_min_end: float = math.inf
        #: Receptions in progress, per receiving node.
        self._receiving: Dict[NodeId, List[_Reception]] = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, node_id: NodeId, deliver: Callable[[Frame], None]) -> None:
        """Register the frame-delivery callback of a node's radio."""
        self._receivers[node_id] = deliver

    def detach(self, node_id: NodeId) -> None:
        """Remove a node's radio (e.g. the user left)."""
        self._receivers.pop(node_id, None)
        self._receiving.pop(node_id, None)

    # ------------------------------------------------------------------
    # Channel state
    # ------------------------------------------------------------------
    def airtime(self, size_bytes: int) -> float:
        """Channel occupancy of a frame of the given total size."""
        return self.preamble_s + (size_bytes * 8) / self.broadcast_rate_bps

    def _prune_active(self) -> None:
        now = self.sim.now
        if now < self._active_min_end:
            return
        active = [tx for tx in self._active if tx.end > now]
        self._active = active
        self._active_min_end = min((tx.end for tx in active), default=math.inf)

    def _senses(self, node_id: NodeId, sender: NodeId) -> bool:
        """Whether ``node_id``'s carrier sense detects ``sender``."""
        if node_id == sender:
            return True
        topology = self.topology
        sense_range = topology.radio_range * self.carrier_sense_factor
        # One distance check, not a range query: same disk-model predicate
        # as ``nodes_within`` but O(1) and no cache churn under mobility.
        return topology.within(node_id, sender, sense_range)

    def channel_busy(self, node_id: NodeId) -> bool:
        """Carrier sense: is any sensed node (or self) transmitting now?"""
        self._prune_active()
        return any(self._senses(node_id, tx.sender) for tx in self._active)

    def busy_until(self, node_id: NodeId) -> float:
        """Earliest time the channel around ``node_id`` could become free."""
        self._prune_active()
        latest = self.sim.now
        for tx in self._active:
            if self._senses(node_id, tx.sender):
                latest = max(latest, tx.end)
        return latest

    def node_transmitting(self, node_id: NodeId) -> bool:
        """Whether the node itself is currently on the air."""
        self._prune_active()
        return any(tx.sender == node_id for tx in self._active)

    def observe_state(self) -> Dict[str, float]:
        """Flight-recorder view: channel occupancy, strictly read-only.

        ``airtime_s`` is *cumulative* channel time derived exactly from
        the existing transmission counters (every frame contributes
        ``preamble + bits/rate``), so sampling adds no accounting to the
        :meth:`transmit` hot path; the recorder differentiates it into a
        per-interval utilization.  ``active_tx`` counts transmissions
        still on the air without pruning the list.
        """
        now = self.sim.now
        return {
            "active_tx": sum(1 for tx in self._active if tx.end > now),
            "airtime_s": (
                self.stats.frames_sent * self.preamble_s
                + (self.stats.bytes_sent * 8.0) / self.broadcast_rate_bps
            ),
        }

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, frame: Frame) -> float:
        """Put ``frame`` on the air now; returns its airtime.

        The radio is responsible for carrier sensing *before* calling this.
        Deliveries to every in-range node are scheduled at transmission end;
        collisions and half-duplex conflicts are marked as they happen.
        """
        now = self.sim.now
        self._prune_active()
        duration = self.airtime(frame.size)
        end = now + duration
        tx = _Transmission(sender=frame.sender, start=now, end=end, frame=frame)
        self.stats.record_transmission(frame.kind, frame.size, sender=frame.sender)
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(
                "frame_sent",
                node=frame.sender,
                frame_id=frame.frame_id,
                frame_kind=frame.kind,
                size=frame.size,
                retx=frame.retransmission,
                airtime=duration,
                **frame_corr_fields(frame),
            )

        # Half duplex: starting to transmit ruins our own in-progress
        # receptions.
        for reception in self._receiving.get(frame.sender, ()):
            if reception.end > now:
                reception.ruined_by_busy = True

        if frame.sender in self.topology:
            receivers = self.topology.neighbors(frame.sender)
            if receivers:
                receiving = self._receiving
                # Half duplex: precompute who is on the air right now, once
                # per transmission instead of once per receiver.
                on_air = {active.sender for active in self._active}
                for receiver in receivers:
                    reception = _Reception(sender=frame.sender, start=now, end=end)
                    # Collision: another in-range transmission is already
                    # being received here — both frames are ruined.
                    for other in receiving.get(receiver, ()):
                        if other.end > now:
                            other.ruined_by_collision = True
                            reception.ruined_by_collision = True
                    # Half duplex: the receiver itself is mid-transmission.
                    if receiver in on_air:
                        reception.ruined_by_busy = True
                    receiving.setdefault(receiver, []).append(reception)
                    tx.receptions[receiver] = reception
                # One queue event fans out to every receiver.  The k
                # per-receiver events this replaces carried consecutive
                # sequence numbers, so nothing could ever interleave them:
                # delivering sequentially inside one event observes and
                # produces the exact same state transitions.
                self.sim.schedule(duration, self._deliver_all, tx)

        self._active.append(tx)
        if end < self._active_min_end:
            self._active_min_end = end
        return duration

    def _deliver_all(self, tx: _Transmission) -> None:
        """Deliver ``tx`` to every pending receiver, in schedule order.

        Per-transmission invariants (frame fields, loss probability, trace
        correlation fields...) are hoisted out of the per-receiver loop —
        this runs once per frame for every in-range node, which makes it
        the hottest loop in the whole simulator.
        """
        receptions = tx.receptions
        if not receptions:
            return
        tx.receptions = {}
        sim = self.sim
        now = sim.now
        trace = sim.trace
        trace_enabled = trace.enabled
        frame = tx.frame
        sender = tx.sender
        frame_size = frame.size
        corr = frame_corr_fields(frame) if trace_enabled else {}
        in_range = self.topology.in_range
        receivers = self._receivers
        receiving = self._receiving
        base_loss = self.base_loss
        rng_random = self.rng.random
        record_loss = self.stats.record_loss
        record_delivery = self.stats.record_delivery
        observe = self._latency_hist.observe
        # Per-hop latency: enqueue (when stamped by the sending face) or
        # transmission start, to delivery.
        enqueued = frame.enqueued_at
        latency_base = enqueued if enqueued is not None else tx.start
        for receiver, reception in receptions.items():
            in_progress = receiving.get(receiver)
            if in_progress is not None:
                try:
                    in_progress.remove(reception)
                except ValueError:
                    pass
                if not in_progress:
                    del receiving[receiver]
            deliver = receivers.get(receiver)
            # ``in_range`` covers nodes that left or moved apart during the
            # airtime: absent nodes are never in range.
            if deliver is None or not in_range(receiver, sender):
                continue
            if reception.ruined_by_busy:
                record_loss("busy_receiver")
                if trace_enabled:
                    trace.emit(
                        "frame_lost",
                        node=receiver,
                        frame_id=frame.frame_id,
                        sender=sender,
                        reason="busy_receiver",
                        **corr,
                    )
                continue
            if reception.ruined_by_collision:
                record_loss("collision")
                if trace_enabled:
                    trace.emit(
                        "frame_lost",
                        node=receiver,
                        frame_id=frame.frame_id,
                        sender=sender,
                        reason="collision",
                        **corr,
                    )
                continue
            if base_loss > 0 and rng_random() < base_loss:
                record_loss("random")
                if trace_enabled:
                    trace.emit(
                        "frame_lost",
                        node=receiver,
                        frame_id=frame.frame_id,
                        sender=sender,
                        reason="random",
                        **corr,
                    )
                continue
            record_delivery(receiver, frame_size)
            observe(now - latency_base)
            if trace_enabled:
                trace.emit(
                    "frame_delivered",
                    node=receiver,
                    frame_id=frame.frame_id,
                    sender=sender,
                    frame_kind=frame.kind,
                    size=frame_size,
                    **corr,
                )
            deliver(frame)
