"""Per-node radio: OS send buffer + CSMA transmit loop.

Models the path below the application on an Android phone (§V-2): frames
enter a finite OS buffer (newly arrived frames are *silently dropped* when
it is full — the documented cause of the 14% raw-UDP reception) and drain
one at a time at the MAC broadcast rate, deferring with random backoff
while the channel is busy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from collections import deque

from repro.errors import ConfigurationError
from repro.net.medium import BroadcastMedium
from repro.net.message import Frame, frame_corr_fields
from repro.net.topology import NodeId
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class RadioConfig:
    """Link-level knobs.

    Attributes:
        os_buffer_bytes: Capacity of the OS send buffer.  The paper's
            validation saw ≈658 × 1.5 KB frames accepted before overflow,
            i.e. ≈1 MB.
        backoff_min_s / backoff_max_s: Uniform random deferral when the
            channel is sensed busy, applied after the channel frees.
        inter_frame_gap_s: Idle gap between back-to-back own transmissions.
    """

    os_buffer_bytes: int = 1_000_000
    backoff_min_s: float = 0.2e-3
    backoff_max_s: float = 1.5e-3
    inter_frame_gap_s: float = 0.1e-3

    def __post_init__(self) -> None:
        if self.os_buffer_bytes <= 0:
            raise ConfigurationError("os_buffer_bytes must be positive")
        if not 0 <= self.backoff_min_s <= self.backoff_max_s:
            raise ConfigurationError("backoff window must satisfy 0 <= min <= max")


class Radio:
    """A half-duplex CSMA radio with a finite OS send buffer."""

    def __init__(
        self,
        sim: Simulator,
        medium: BroadcastMedium,
        node_id: NodeId,
        rng: random.Random,
        config: Optional[RadioConfig] = None,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.node_id = node_id
        self.rng = rng
        self.config = config if config is not None else RadioConfig()
        self._queue: Deque[Frame] = deque()
        self._queued_bytes = 0
        self._sending = False
        self._receive_callback: Optional[Callable[[Frame], None]] = None
        self._sent_callback: Optional[Callable[[Frame], None]] = None
        self._queue_gauge = sim.metrics.gauge("net.radio_queue_frames")
        medium.attach(node_id, self._on_frame)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def on_receive(self, callback: Callable[[Frame], None]) -> None:
        """Set the upcall invoked for every frame heard on the air."""
        self._receive_callback = callback

    def on_sent(self, callback: Callable[[Frame], None]) -> None:
        """Set the upcall invoked when a frame finishes transmitting.

        The reliability layer uses this to start retransmission timers at
        the moment the frame actually left the radio.
        """
        self._sent_callback = callback

    def shutdown(self) -> None:
        """Detach from the medium and drop queued frames (node left)."""
        self.medium.detach(self.node_id)
        self._queue.clear()
        self._queued_bytes = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, frame: Frame, priority: bool = False) -> bool:
        """Enqueue a frame into the OS buffer.

        Returns:
            False if the buffer was full and the frame was silently dropped
            (the Android UDP overflow behaviour), True otherwise.
        """
        if self._queued_bytes + frame.size > self.config.os_buffer_bytes:
            self.medium.stats.frames_dropped_buffer += 1
            trace = self.sim.trace
            if trace.enabled:
                trace.emit(
                    "frame_dropped",
                    node=self.node_id,
                    frame_id=frame.frame_id,
                    frame_kind=frame.kind,
                    size=frame.size,
                    reason="os_buffer",
                    **frame_corr_fields(frame),
                )
            return False
        if priority:
            self._queue.appendleft(frame)
        else:
            self._queue.append(frame)
        self._queued_bytes += frame.size
        # Timestamped set: the gauge integrates depth over sim time, so
        # snapshots report a time-weighted mean depth, not just the last.
        self._queue_gauge.set(len(self._queue), now=self.sim.now)
        self._pump()
        return True

    def remove(self, frame: Frame) -> bool:
        """Withdraw a queued frame (by object identity) before it airs.

        Returns:
            True if the frame was still in the OS buffer and was removed.
        """
        for queued in self._queue:
            if queued is frame:
                self._queue.remove(queued)
                self._queued_bytes -= frame.size
                return True
        return False

    @property
    def queued_bytes(self) -> int:
        """Bytes currently waiting in the OS buffer."""
        return self._queued_bytes

    @property
    def queue_length(self) -> int:
        """Frames currently waiting in the OS buffer."""
        return len(self._queue)

    def queued_frames(self):
        """Snapshot of the frames currently waiting (read-only use)."""
        return list(self._queue)

    def _pump(self) -> None:
        if self._sending or not self._queue:
            return
        self._sending = True
        self._attempt()

    def _attempt(self) -> None:
        if not self._queue:
            self._sending = False
            return
        if self.node_id not in self.medium.topology:
            # Node left the area; discard outstanding traffic.
            self._queue.clear()
            self._queued_bytes = 0
            self._sending = False
            return
        if self.medium.channel_busy(self.node_id):
            wait = self.medium.busy_until(self.node_id) - self.sim.now
            backoff = self.rng.uniform(
                self.config.backoff_min_s, self.config.backoff_max_s
            )
            self.sim.schedule(max(0.0, wait) + backoff, self._attempt)
            return
        frame = self._queue.popleft()
        self._queued_bytes -= frame.size
        duration = self.medium.transmit(frame)
        self.sim.schedule(duration, self._finished, frame)

    def _finished(self, frame: Frame) -> None:
        if self._sent_callback is not None:
            self._sent_callback(frame)
        if self._queue:
            gap = self.config.inter_frame_gap_s + self.rng.uniform(
                0.0, self.config.backoff_max_s
            )
            self.sim.schedule(gap, self._attempt)
        else:
            self._sending = False

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _on_frame(self, frame: Frame) -> None:
        if self._receive_callback is not None:
            self._receive_callback(frame)
