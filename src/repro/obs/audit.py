"""Protocol anomaly analyzer: causal invariants over correlated traces.

Checks a correlation-stamped trace (see :mod:`repro.obs.spans`) against
invariants the protocol must uphold.  Every check is *sound* for the
protocol as specified — a violation means the implementation diverged,
not that a heuristic disagreed:

``unanswered_query``
    A node's DS lookup reported fresh matches (``bloom_prune`` with
    ``misses > 0``) but no ``response_sent`` for that query ever left the
    node.  Algorithm 1 sends responses for every non-covered match.
``redundant_metadata``
    A PDD response carried a key the query's *issued* Bloom filter
    already covered.  Relay working copies only ever add bits, so they
    are supersets of the issued filter; Bloom filters have no false
    negatives — a sent key found in the issued filter is certain
    redundancy the §III-B-2 pruning should have suppressed.
``farther_copy``
    A chunk assignment's hop-weighted maximum load exceeded the pure
    greedy least-hop baseline recomputed from the recorded per-chunk
    options.  :func:`repro.core.assignment.assign_chunks` guarantees it
    never loses to that baseline, so exceeding it means chunks were
    requested from needlessly far copies.
``lingering_past_expiry``
    A query was *forwarded* at or after its own expiry.  (Responding
    after expiry is legitimate — DS lookup precedes the receiver/expiry
    check in Algorithm 1 — forwarding is not.)
``retransmission_storm``
    One frame was retransmitted more times than MaxRetrTime allows on a
    link, indicating runaway reliability state.
``early_round_stop``
    A discovery round ended before its window ``T`` elapsed, violating
    the §III-B-2 stop rule (the ratio test only runs after ``T``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import Event, scope_of

#: The invariants this module checks, in report order.
INVARIANTS = (
    "unanswered_query",
    "redundant_metadata",
    "farther_copy",
    "lingering_past_expiry",
    "retransmission_storm",
    "early_round_stop",
)

_TIME_EPSILON = 1e-9


@dataclass(frozen=True)
class Violation:
    """One invariant breach, anchored to the trace location."""

    invariant: str
    scope: Tuple[str, int]
    time: float
    node: Optional[int]
    query_id: Optional[int]
    detail: str

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "invariant": self.invariant,
            "shard": self.scope[0],
            "run": self.scope[1],
            "t": self.time,
            "node": self.node,
            "query_id": self.query_id,
            "detail": self.detail,
        }


@dataclass
class AuditReport:
    """All violations found in one trace, plus coverage counters."""

    violations: List[Violation] = field(default_factory=list)
    events_checked: int = 0
    queries_checked: int = 0
    responses_checked: int = 0
    assignments_checked: int = 0
    rounds_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> Dict[str, int]:
        """Violations per invariant (zero entries omitted)."""
        tally: Dict[str, int] = {}
        for violation in self.violations:
            tally[violation.invariant] = tally.get(violation.invariant, 0) + 1
        return tally

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "events_checked": self.events_checked,
            "queries_checked": self.queries_checked,
            "responses_checked": self.responses_checked,
            "assignments_checked": self.assignments_checked,
            "rounds_checked": self.rounds_checked,
            "counts": self.counts(),
            "violations": [v.to_json_dict() for v in self.violations],
        }


# ----------------------------------------------------------------------
def audit_events(
    events: Sequence[Event],
    max_retransmissions: Optional[int] = None,
) -> AuditReport:
    """Check every invariant over a (shard-tagged) event stream.

    Ids are only compared within one ``(shard, run)`` scope — forked
    workers inherit the id counters, so the same query id in two shards
    names two unrelated queries.  ``max_retransmissions`` defaults to the
    protocol's MaxRetrTime.
    """
    # Imported here, not at module scope: pulling protocol modules into
    # ``repro.obs`` at import time would close an import cycle through
    # the simulator (which itself imports ``repro.obs.trace``).
    from repro.bloom.bloom_filter import BloomFilter
    from repro.core.assignment import greedy_max_load
    from repro.net.reliability import DEFAULT_MAX_RETRANSMISSIONS

    if max_retransmissions is None:
        max_retransmissions = DEFAULT_MAX_RETRANSMISSIONS
    report = AuditReport(events_checked=len(events))

    # Pass 1: index per-scope state.
    issued_blooms: Dict[Tuple[str, int, int], BloomFilter] = {}
    issued_protos: Dict[Tuple[str, int, int], str] = {}
    prunes: Dict[Tuple[str, int, int, int], Event] = {}
    responded: set = set()
    retransmits: Dict[Tuple[str, int, int], List[Event]] = defaultdict(list)

    for event in events:
        kind = event.get("kind")
        scope = scope_of(event)
        if kind == "query_issued":
            key = scope + (int(event["query_id"]),)
            report.queries_checked += 1
            issued_protos[key] = str(event.get("proto", "?"))
            if "bloom_bits" in event:
                issued_blooms[key] = BloomFilter.from_trace_fields(event)
        elif kind == "bloom_prune":
            if int(event.get("misses", 0)) > 0:
                key = scope + (int(event["query_id"]), int(event.get("node", -1)))
                prunes.setdefault(key, event)
        elif kind == "response_sent":
            if event.get("query_id") is not None:
                responded.add(
                    scope + (int(event["query_id"]), int(event.get("node", -1)))
                )
        elif kind == "retransmit":
            retransmits[scope + (int(event.get("frame_id", -1)),)].append(event)

    # Pass 2: per-event invariants.
    for event in events:
        kind = event.get("kind")
        scope = scope_of(event)
        time = float(event.get("t", 0.0))
        node = event.get("node")
        node = int(node) if node is not None else None

        if kind == "response_sent" and event.get("proto") == "pdd":
            report.responses_checked += 1
            query_id = event.get("query_id")
            if query_id is None:
                continue
            bloom = issued_blooms.get(scope + (int(query_id),))
            if bloom is None:
                continue
            covered = [
                key
                for key in event.get("keys") or ()
                if bytes.fromhex(str(key)) in bloom
            ]
            if covered:
                report.violations.append(
                    Violation(
                        invariant="redundant_metadata",
                        scope=scope,
                        time=time,
                        node=node,
                        query_id=int(query_id),
                        detail=(
                            f"{len(covered)} key(s) already covered by the "
                            f"issued Bloom filter, e.g. {covered[0][:16]}..."
                        ),
                    )
                )

        elif kind == "chunk_assignment":
            options_doc = event.get("options")
            assignment_doc = event.get("assignment")
            if not options_doc or not assignment_doc:
                continue
            report.assignments_checked += 1
            options = {
                int(cid): [(int(n), int(h)) for n, h in pairs]
                for cid, pairs in options_doc.items()  # type: ignore[union-attr]
            }
            chosen = _chosen_max_load(options, assignment_doc)  # type: ignore[arg-type]
            if chosen is None:
                continue
            baseline = greedy_max_load(options)
            if chosen > baseline:
                report.violations.append(
                    Violation(
                        invariant="farther_copy",
                        scope=scope,
                        time=time,
                        node=node,
                        query_id=_opt_int(event.get("query_id")),
                        detail=(
                            f"hop-weighted max load {chosen} exceeds the "
                            f"greedy least-hop baseline {baseline}"
                        ),
                    )
                )

        elif kind == "query_forwarded":
            expires_at = event.get("expires_at")
            if expires_at is not None and time >= float(expires_at) - _TIME_EPSILON:
                report.violations.append(
                    Violation(
                        invariant="lingering_past_expiry",
                        scope=scope,
                        time=time,
                        node=node,
                        query_id=_opt_int(event.get("query_id")),
                        detail=(
                            f"forwarded at t={time:.3f}s, "
                            f"{time - float(expires_at):.3f}s past expiry"
                        ),
                    )
                )

        elif kind == "round_end":
            report.rounds_checked += 1
            window = event.get("window")
            duration = event.get("duration")
            if window is None or duration is None:
                continue
            if float(duration) < float(window) - _TIME_EPSILON:
                report.violations.append(
                    Violation(
                        invariant="early_round_stop",
                        scope=scope,
                        time=time,
                        node=node,
                        query_id=None,
                        detail=(
                            f"round {event.get('round')} stopped after "
                            f"{float(duration):.3f}s < window {float(window):.3f}s"
                        ),
                    )
                )

    # Pass 3: aggregated invariants.
    for key, prune in prunes.items():
        scope = key[:2]
        query_id, node_id = key[2], key[3]
        if key in responded:
            continue
        proto = issued_protos.get(scope + (query_id,))
        if proto is not None and proto != "pdd":
            continue  # CDI/MDR do not emit bloom_prune; defensive only
        report.violations.append(
            Violation(
                invariant="unanswered_query",
                scope=scope,
                time=float(prune.get("t", 0.0)),
                node=node_id if node_id >= 0 else None,
                query_id=query_id,
                detail=(
                    f"DS lookup found {prune.get('misses')} fresh match(es) "
                    f"but the node never sent a response"
                ),
            )
        )

    for key, retries in retransmits.items():
        if len(retries) > max_retransmissions:
            first = retries[0]
            report.violations.append(
                Violation(
                    invariant="retransmission_storm",
                    scope=key[:2],
                    time=float(retries[-1].get("t", 0.0)),
                    node=_opt_int(first.get("node")),
                    query_id=_opt_int(first.get("query_id")),
                    detail=(
                        f"frame {key[2]} retransmitted {len(retries)} times "
                        f"(MaxRetrTime = {max_retransmissions})"
                    ),
                )
            )

    report.violations.sort(key=lambda v: (v.time, v.invariant))
    return report


def _chosen_max_load(
    options: Dict[int, List[Tuple[int, int]]], assignment_doc: Dict[str, object]
) -> Optional[int]:
    """Hop-weighted max load of the traced assignment; None if unscorable."""
    loads: Dict[int, int] = {}
    for neighbor_str, chunk_ids in assignment_doc.items():
        neighbor = int(neighbor_str)
        for chunk_id in chunk_ids:  # type: ignore[union-attr]
            hops = dict(options.get(int(chunk_id), ()))
            hop = hops.get(neighbor)
            if hop is None:
                return None  # options truncated; cannot score soundly
            loads[neighbor] = loads.get(neighbor, 0) + hop
    return max(loads.values()) if loads else None


def _opt_int(value: object) -> Optional[int]:
    return int(value) if value is not None else None  # type: ignore[arg-type]


def audit_extras(events: Sequence[Event]) -> Dict[str, int]:
    """Per-invariant violation counts for ``TrialMetrics.extras['audit']``."""
    return audit_events(events).counts()


# ----------------------------------------------------------------------
def render_report(report: AuditReport, max_violations: int = 25) -> str:
    """Human-readable audit summary."""
    lines: List[str] = []
    lines.append(
        f"audit: {len(report.violations)} violation(s) over "
        f"{report.events_checked} events "
        f"({report.queries_checked} queries, "
        f"{report.responses_checked} responses, "
        f"{report.assignments_checked} assignments, "
        f"{report.rounds_checked} rounds)"
    )
    counts = report.counts()
    for invariant in INVARIANTS:
        status = counts.get(invariant, 0)
        marker = "FAIL" if status else "ok"
        lines.append(f"  {invariant:<22s} {marker:>4s} {status or ''}")
    for violation in report.violations[:max_violations]:
        lines.append(
            f"  ! t={violation.time:9.3f}s run={violation.scope[1]} "
            f"node={_fmt(violation.node)} query={_fmt(violation.query_id)} "
            f"{violation.invariant}: {violation.detail}"
        )
    if len(report.violations) > max_violations:
        lines.append(
            f"  ... {len(report.violations) - max_violations} more violation(s)"
        )
    return "\n".join(lines)


def _fmt(value: Optional[int]) -> str:
    return "-" if value is None else str(value)
