"""The trace bus: typed protocol events with pluggable sinks.

Every :class:`~repro.sim.simulator.Simulator` owns one :class:`TraceBus`
(``sim.trace``).  Protocol layers publish *typed events* onto it — a short
``kind`` string plus flat keyword fields — stamped with the current virtual
time and the bus's run id (so events from several simulations interleaved
into one file can be told apart).

The bus is **disabled until a sink subscribes**: publishers guard their
emission sites with ``if trace.enabled:`` so a quiet bus costs one
attribute load and a branch, keeping the hot paths at full speed.

Sinks are tiny observer objects:

* :class:`ListSink` — unbounded in-memory capture (tests, ad-hoc digging);
* :class:`RingBufferSink` — bounded capture of the most recent events;
* :class:`JsonlSink` — one JSON object per line, streamed to a file that
  ``python -m repro inspect`` (and any jq pipeline) understands.

Process-wide sinks registered via :func:`install_global_sink` are attached
to every simulator created afterwards — that is how ``--trace out.jsonl``
reaches the scenarios a figure module builds deep inside its run loop.

Event taxonomy (see DESIGN.md for the full field tables):

====================  =====================================================
kind                  emitted by / meaning
====================  =====================================================
``sim_run_end``       Simulator: one ``run()`` call finished.
``frame_sent``        Medium: a frame went on the air (size, kind, retx).
``frame_delivered``   Medium: one receiver got a frame copy.
``frame_lost``        Medium: a copy was ruined (collision/busy/random).
``frame_dropped``     Radio: the OS buffer silently discarded a frame.
``retransmit``        Reliability: an unacked frame was re-sent.
``abandon``           Reliability: retries exhausted, frame given up.
``query_issued``      Discovery/CDI/MDR: a consumer flooded a fresh query.
``query_forwarded``   Discovery/CDI/MDR: a relay re-flooded a query.
``bloom_prune``       Discovery: DS lookup hit/miss counts vs the filter.
``response_sent``     Discovery/CDI: entries/payloads left a responder.
``mixedcast_merge``   Discovery: relayed union response (entry counts).
``lqt_linger``        LQT: a query began lingering at a node.
``lqt_expire``        LQT: a lingering query aged out.
``round_begin``       Rounds: a discovery round started.
``round_end``         Rounds: the silence rule ended a round.
``cdi_update``        Retrieval: CDI table learned/improved routes.
``chunk_assignment``  Retrieval: chunk ids divided among neighbors
                      (includes the raw per-chunk options for audits).
``chunk_request``     Retrieval: a chunk query left for one neighbor
                      (root/parent ids encode the division tree).
``chunk_served``      Retrieval/MDR: a stored chunk answered a query.
``chunk_received``    Retrieval: an addressed chunk reached its consumer.
====================  =====================================================

**Correlation fields.**  Protocol events carry whichever of the shared
correlation keys apply: ``query_id`` (message id of the governing query),
``response_id``, ``round`` (discovery round index), ``chunk_id``,
``consumer`` (the origin node the data is flowing toward), and ``hop``.
Link-layer events (``frame_*``, ``retransmit``, ``abandon``) inherit the
same keys from the payload's :meth:`~repro.net.message.Correlation` stamp
on the frame.  :mod:`repro.obs.spans` folds these into per-query and
per-chunk span trees; :mod:`repro.obs.audit` checks causal invariants
over them.
"""

from __future__ import annotations

import itertools
import json
from collections import Counter as TallyCounter
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.obs.durable import DurableJsonlWriter

_run_ids = itertools.count(1)


@dataclass(frozen=True)
class TraceEvent:
    """One typed event at one virtual time.

    Attributes:
        time: Virtual time of emission (``sim.now``).
        kind: Event type from the module taxonomy.
        node: Node id the event happened at, or None for global events.
        run: Id of the emitting bus (one per simulator).
        fields: Flat JSON-serializable event details.
    """

    time: float
    kind: str
    node: Optional[int]
    run: int
    fields: Dict[str, object] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, object]:
        """The flat dict written to JSONL files."""
        doc: Dict[str, object] = {"t": self.time, "kind": self.kind, "run": self.run}
        if self.node is not None:
            doc["node"] = self.node
        doc.update(self.fields)
        return doc


class TraceSink:
    """Observer interface for trace events."""

    def handle(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (files); safe to call twice."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ListSink(TraceSink):
    """Unbounded in-memory capture."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def handle(self, event: TraceEvent) -> None:
        self.events.append(event)


class RingBufferSink(TraceSink):
    """Keeps only the most recent ``capacity`` events."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.seen = 0

    def handle(self, event: TraceEvent) -> None:
        self.events.append(event)
        self.seen += 1

    @property
    def dropped(self) -> int:
        """Events that fell out of the ring."""
        return self.seen - len(self.events)


class JsonlSink(DurableJsonlWriter, TraceSink):
    """Streams events to a file, one JSON object per line.

    All durability rules (flush+fsync on close, ``atexit`` hook,
    pid-guarded close under ``fork``) live in
    :class:`~repro.obs.durable.DurableJsonlWriter`; the parallel runner
    additionally registers a ``multiprocessing.util.Finalize`` for the
    per-worker shards it opens.  Usable as a context manager.
    """

    def __init__(self, path: str) -> None:
        DurableJsonlWriter.__init__(self, path)

    def handle(self, event: TraceEvent) -> None:
        self.write_doc(event.to_json_dict())


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Load a trace file back into a list of flat event dicts.

    The file-header provenance record every
    :class:`~repro.obs.durable.DurableJsonlWriter` leads with is not an
    event and is skipped.
    """
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            if isinstance(doc, dict) and ("provenance" in doc or "attempt" in doc):
                # Provenance headers and the parallel runner's attempt
                # commit/abort markers are bookkeeping, not events.
                continue
            events.append(doc)
    return events


class TraceBus:
    """Per-simulator event publisher.

    ``enabled`` is a plain attribute kept in sync with the sink list so the
    hot-path guard (``if trace.enabled:``) is one load, no call.
    """

    __slots__ = ("clock", "run_id", "enabled", "counts", "_sinks")

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        run_id: Optional[int] = None,
    ) -> None:
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.run_id = next(_run_ids) if run_id is None else run_id
        self._sinks: List[TraceSink] = []
        self.enabled = False
        #: Per-kind emission tally (cheap observability of the tracer).
        self.counts: TallyCounter = TallyCounter()

    def subscribe(self, sink: TraceSink) -> TraceSink:
        """Attach a sink; enables the bus."""
        self._sinks.append(sink)
        self.enabled = True
        return sink

    def unsubscribe(self, sink: TraceSink) -> None:
        """Detach a sink; the bus disables itself when none remain."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass
        self.enabled = bool(self._sinks)

    def emit(self, kind: str, node: Optional[int] = None, **fields: object) -> Optional[TraceEvent]:
        """Publish one event to all sinks.

        While no sink is attached this degenerates to a tally bump: no
        :class:`TraceEvent` is built, the clock is not read, and the kwargs
        dict (already materialised by the call) is dropped — so unguarded
        emission sites still cost ~a dict build, not an object graph.
        Guarded sites (``if trace.enabled:``) skip even that.
        """
        if not self._sinks:
            self.counts[kind] += 1
            return None
        event = TraceEvent(self.clock(), kind, node, self.run_id, fields)
        self.counts[kind] += 1
        for sink in self._sinks:
            sink.handle(event)
        return event


#: Sinks attached to every TraceBus created after registration.
_GLOBAL_SINKS: List[TraceSink] = []


def install_global_sink(sink: TraceSink) -> TraceSink:
    """Attach ``sink`` to all simulators created from now on."""
    _GLOBAL_SINKS.append(sink)
    return sink


def remove_global_sink(sink: TraceSink) -> None:
    """Stop attaching ``sink`` to new simulators."""
    try:
        _GLOBAL_SINKS.remove(sink)
    except ValueError:
        pass


def global_sinks() -> List[TraceSink]:
    """The currently registered process-wide sinks."""
    return list(_GLOBAL_SINKS)


@contextmanager
def global_sink(sink: TraceSink) -> Iterator[TraceSink]:
    """Scope a process-wide sink registration (used by the CLI)."""
    install_global_sink(sink)
    try:
        yield sink
    finally:
        remove_global_sink(sink)
        sink.close()
