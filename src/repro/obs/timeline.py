"""Timeline reconstruction and rendering: ``repro inspect --timeline``.

Reads the keyframe+delta JSONL written by :mod:`repro.obs.recorder`,
scoped per ``(shard file, run id)`` exactly like trace spans, and offers:

* ``--timeline`` — per-node sparkline/table views of any recorded series;
* ``--at <t>`` — exact state reconstruction at an arbitrary sim time from
  the nearest keyframe plus the deltas up to the last sample at or before
  ``t``;
* ``--diff <t1> <t2>`` — what changed (entries added / removed /
  rewritten) between two instants.

The path argument accepts a single file, a directory, or a glob, and a
plain file automatically picks up per-worker shards next to it
(``timeline.0.jsonl``, ...) — the same resolution rules as trace files.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.recorder import SEP, unflatten_state
from repro.obs.spans import resolve_trace_paths

Record = Dict[str, Any]

#: Sparkline glyphs, lowest to highest.
_SPARK = "▁▂▃▄▅▆▇█"

#: Per-node series: label -> (section path suffix, mode).  ``count`` series
#: count flat keys under the prefix; ``value`` series read one flat key.
NODE_SERIES: Dict[str, Tuple[str, str]] = {
    "lqt": ("lqt", "count"),
    "cdi": (f"cdi{SEP}size", "value"),
    "meta": (f"store{SEP}metadata", "value"),
    "chunks": (f"store{SEP}chunks", "value"),
    "bytes": (f"store{SEP}bytes", "value"),
    "sendq": (f"face{SEP}sendq", "value"),
    "radioq": (f"face{SEP}radioq", "value"),
    "retx": (f"face{SEP}retx", "value"),
}

DEFAULT_SERIES = ("lqt", "cdi", "chunks", "sendq", "retx")


class TimelineError(ReproError):
    """Raised when a timeline cannot be loaded or reconstructed."""


@dataclass
class TimelineRun:
    """One simulator's recording inside one shard file."""

    scope: Tuple[str, int]  # (shard basename, run id)
    meta: Record
    records: List[Record] = field(default_factory=list)

    @property
    def times(self) -> List[float]:
        return [float(record["t"]) for record in self.records]

    @property
    def t_min(self) -> float:
        return float(self.records[0]["t"]) if self.records else 0.0

    @property
    def t_max(self) -> float:
        return float(self.records[-1]["t"]) if self.records else 0.0


@dataclass
class TimelineLoad:
    """Every run found across the resolved shard files."""

    runs: List[TimelineRun]
    paths: List[str]
    skipped_lines: int = 0


def load_timeline(path: str) -> TimelineLoad:
    """Load and scope the timeline file(s) named by ``path``.

    Non-timeline lines (e.g. trace events sharing a directory) and
    unparseable lines are skipped and counted.  Records are ordered by
    sample sequence number within each ``(shard, run)`` scope.
    """
    paths = resolve_trace_paths(path)
    runs: Dict[Tuple[str, int], TimelineRun] = {}
    skipped = 0
    for file_path in paths:
        shard = os.path.basename(file_path)
        with open(file_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                if isinstance(record, dict) and (
                    "provenance" in record or "attempt" in record
                ):
                    # File-header provenance records and the parallel
                    # runner's attempt markers — expected, not skipped
                    # lines.
                    continue
                if not isinstance(record, dict) or "rec" not in record:
                    skipped += 1
                    continue
                scope = (shard, int(record.get("run", 0)))
                run = runs.get(scope)
                if run is None:
                    run = runs[scope] = TimelineRun(scope=scope, meta={})
                if record["rec"] == "meta":
                    run.meta = record
                elif record["rec"] in ("key", "delta"):
                    run.records.append(record)
                else:
                    skipped += 1
    for run in runs.values():
        run.records.sort(key=lambda record: int(record.get("seq", 0)))
    ordered = [runs[scope] for scope in sorted(runs)]
    return TimelineLoad(runs=ordered, paths=paths, skipped_lines=skipped)


# ----------------------------------------------------------------------
# Reconstruction
# ----------------------------------------------------------------------
def _apply(flat: Dict[str, Any], record: Record) -> Dict[str, Any]:
    if record["rec"] == "key":
        return dict(record["state"])
    flat.update(record.get("set", {}))
    for key in record.get("del", ()):
        flat.pop(key, None)
    return flat


def reconstruct_at(run: TimelineRun, t: float) -> Tuple[float, int, Dict[str, Any]]:
    """Exact flat state at the last sample with time ``<= t``.

    Returns ``(sample_time, seq, flat_state)``.  Walks back from the
    target sample to its governing keyframe, then replays deltas forward.

    Raises:
        TimelineError: when ``t`` precedes the run's first sample or the
            governing keyframe is missing (truncated shard).
    """
    if not run.records:
        raise TimelineError(
            f"run {run.scope[0]}:{run.scope[1]} has no samples"
        )
    target = -1
    for index, record in enumerate(run.records):
        if float(record["t"]) <= t:
            target = index
        else:
            break
    if target < 0:
        raise TimelineError(
            f"t={t:g} is before the first sample "
            f"(t={run.t_min:g}) of run {run.scope[0]}:{run.scope[1]}"
        )
    key_index = target
    while key_index >= 0 and run.records[key_index]["rec"] != "key":
        key_index -= 1
    if key_index < 0:
        raise TimelineError(
            f"run {run.scope[0]}:{run.scope[1]} has no keyframe at or "
            f"before t={t:g} (truncated timeline?)"
        )
    flat: Dict[str, Any] = {}
    for record in run.records[key_index : target + 1]:
        flat = _apply(flat, record)
    chosen = run.records[target]
    return float(chosen["t"]), int(chosen["seq"]), flat


def state_at(run: TimelineRun, t: float) -> Dict[str, Any]:
    """Nested reconstructed state at ``t`` (convenience wrapper)."""
    _, _, flat = reconstruct_at(run, t)
    return unflatten_state(flat)


def iterate_states(run: TimelineRun):
    """Yield ``(t, seq, flat_state)`` for every sample, in one pass.

    The yielded dict is reused between iterations — copy it if kept.
    """
    flat: Dict[str, Any] = {}
    for record in run.records:
        flat = _apply(flat, record)
        yield float(record["t"]), int(record.get("seq", 0)), flat


def diff_between(
    run: TimelineRun, t1: float, t2: float
) -> Dict[str, Dict[str, Any]]:
    """Flat-key diff of the reconstructed states at ``t1`` and ``t2``.

    Returns ``{"added": {key: new}, "removed": {key: old},
    "changed": {key: (old, new)}}``.
    """
    _, _, before = reconstruct_at(run, t1)
    _, _, after = reconstruct_at(run, t2)
    added = {key: value for key, value in after.items() if key not in before}
    removed = {key: value for key, value in before.items() if key not in after}
    changed = {
        key: (before[key], value)
        for key, value in after.items()
        if key in before and before[key] != value
    }
    return {"added": added, "removed": removed, "changed": changed}


# ----------------------------------------------------------------------
# Series extraction + sparklines
# ----------------------------------------------------------------------
def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a numeric series as a fixed-width unicode sparkline.

    Longer series are downsampled by taking each bucket's maximum (spikes
    must stay visible in a flight recorder).
    """
    if not values:
        return ""
    if len(values) > width:
        bucketed: List[float] = []
        for index in range(width):
            lo = index * len(values) // width
            hi = max(lo + 1, (index + 1) * len(values) // width)
            bucketed.append(max(values[lo:hi]))
        values = bucketed
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARK[0] * len(values)
    top = len(_SPARK) - 1
    return "".join(
        _SPARK[min(top, int((value - low) / span * top + 0.5))] for value in values
    )


def node_series(run: TimelineRun, name: str) -> Dict[str, List[float]]:
    """Per-node value list (one entry per sample) for a named series.

    Nodes absent at a sample (not yet joined, or left) contribute 0.
    """
    if name not in NODE_SERIES:
        raise TimelineError(
            f"unknown series {name!r}; available: {', '.join(sorted(NODE_SERIES))}"
        )
    suffix, mode = NODE_SERIES[name]
    series: Dict[str, List[float]] = {}
    sample_index = 0
    for _, _, flat in iterate_states(run):
        per_node: Dict[str, float] = {}
        if mode == "count":
            probe = f"{SEP}{suffix}{SEP}"
            for key in flat:
                if key.startswith("nodes") and probe in key:
                    node = key.split(SEP, 2)[1]
                    per_node[node] = per_node.get(node, 0.0) + 1.0
        else:
            tail = f"{SEP}{suffix}"
            for key, value in flat.items():
                if key.startswith("nodes") and key.endswith(tail):
                    node = key.split(SEP, 2)[1]
                    if key == f"nodes{SEP}{node}{SEP}{suffix}":
                        per_node[node] = float(value)
        for node in per_node:
            if node not in series:
                series[node] = [0.0] * sample_index
        for node, values in series.items():
            values.append(per_node.get(node, 0.0))
        sample_index += 1
    return series


def net_series(run: TimelineRun) -> Dict[str, List[float]]:
    """Network-wide series: active transmissions, utilization, degree."""
    active: List[float] = []
    util: List[float] = []
    degree_mean: List[float] = []
    prev_t: Optional[float] = None
    prev_airtime = 0.0
    for t, _, flat in iterate_states(run):
        active.append(float(flat.get(f"net{SEP}active_tx", 0.0)))
        airtime = float(flat.get(f"net{SEP}airtime_s", 0.0))
        if prev_t is not None and t > prev_t:
            util.append((airtime - prev_airtime) / (t - prev_t))
        else:
            util.append(0.0)
        prev_t, prev_airtime = t, airtime
        total = 0.0
        count = 0.0
        probe = f"net{SEP}degree{SEP}"
        for key, value in flat.items():
            if key.startswith(probe):
                deg = float(key[len(probe) :])
                total += deg * float(value)
                count += float(value)
        degree_mean.append(total / count if count else 0.0)
    return {"active_tx": active, "airtime_util": util, "degree_mean": degree_mean}


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _run_header(run: TimelineRun) -> str:
    meta = run.meta
    bits = [
        f"timeline run {run.scope[0]}:{run.scope[1]}:",
        f"{len(run.records)} samples,",
        f"t = {run.t_min:.3f}s .. {run.t_max:.3f}s",
    ]
    if meta:
        bits.append(
            f"(interval {meta.get('interval', '?')}s, "
            f"keyframe every {meta.get('keyframe_every', '?')})"
        )
    return " ".join(bits)


def render_timeline(
    load: TimelineLoad,
    series: Sequence[str] = DEFAULT_SERIES,
    top_nodes: int = 10,
) -> str:
    """Sparkline/table views of the requested series, one block per run."""
    if not load.runs:
        return "timeline: empty (no samples)"
    blocks: List[str] = []
    for run in load.runs:
        lines = [_run_header(run)]
        lines.append("net:")
        for name, values in net_series(run).items():
            if not values:
                continue
            lines.append(
                f"  {name:<12s} {sparkline(values)}  "
                f"min {min(values):g} max {max(values):g} last {values[-1]:g}"
            )
        for name in series:
            per_node = node_series(run, name)
            if not per_node:
                continue
            lines.append(f"series {name} (top {top_nodes} nodes by peak):")
            ranked = sorted(
                per_node.items(), key=lambda item: (-max(item[1]), item[0])
            )[:top_nodes]
            for node, values in ranked:
                lines.append(
                    f"  node {node:<6s} {sparkline(values)}  "
                    f"min {min(values):g} max {max(values):g} last {values[-1]:g}"
                )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_at(load: TimelineLoad, t: float) -> str:
    """Per-node state tables reconstructed at ``t``, one block per run."""
    if not load.runs:
        return "timeline: empty (no samples)"
    blocks: List[str] = []
    for run in load.runs:
        sample_t, seq, flat = reconstruct_at(run, t)
        nested = unflatten_state(flat)
        lines = [_run_header(run)]
        lines.append(
            f"state at t={t:g} (sample seq {seq} taken at t={sample_t:.3f}s):"
        )
        net = nested.get("net", {})
        lines.append(
            f"  net: active_tx={_fmt(net.get('active_tx', 0))} "
            f"airtime_s={_fmt(net.get('airtime_s', 0.0))} "
            f"nodes={_fmt(net.get('nodes', 0))}"
        )
        header = (
            f"  {'node':<6s} {'lqt':>5s} {'cdi':>5s} {'meta':>6s} "
            f"{'chunks':>6s} {'sendq':>6s} {'retx':>5s}"
        )
        lines.append(header)
        nodes = nested.get("nodes", {})
        for node in sorted(nodes, key=lambda n: (len(n), n)):
            state = nodes[node]
            lqt_total = sum(
                len(table)
                for table in state.get("lqt", {}).values()
                if isinstance(table, dict)
            )
            store = state.get("store", {})
            face = state.get("face", {})
            lines.append(
                f"  {node:<6s} {lqt_total:>5d} "
                f"{_fmt(state.get('cdi', {}).get('size', 0)):>5s} "
                f"{_fmt(store.get('metadata', 0)):>6s} "
                f"{_fmt(store.get('chunks', 0)):>6s} "
                f"{_fmt(face.get('sendq', 0)):>6s} "
                f"{_fmt(face.get('retx', 0)):>5s}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def _display_key(key: str) -> str:
    return key.replace(SEP, ".")


def render_diff(load: TimelineLoad, t1: float, t2: float, limit: int = 40) -> str:
    """What changed between two instants, one block per run."""
    if not load.runs:
        return "timeline: empty (no samples)"
    blocks: List[str] = []
    for run in load.runs:
        diff = diff_between(run, t1, t2)
        lines = [_run_header(run)]
        lines.append(
            f"diff t1={t1:g} -> t2={t2:g}: "
            f"{len(diff['added'])} added, {len(diff['removed'])} removed, "
            f"{len(diff['changed'])} rewritten"
        )
        shown = 0
        for key in sorted(diff["added"]):
            if shown >= limit:
                break
            lines.append(f"  + {_display_key(key)} = {_fmt(diff['added'][key])}")
            shown += 1
        for key in sorted(diff["removed"]):
            if shown >= limit:
                break
            lines.append(f"  - {_display_key(key)} (was {_fmt(diff['removed'][key])})")
            shown += 1
        for key in sorted(diff["changed"]):
            if shown >= limit:
                break
            old, new = diff["changed"][key]
            lines.append(f"  ~ {_display_key(key)}: {_fmt(old)} -> {_fmt(new)}")
            shown += 1
        total = sum(len(part) for part in diff.values())
        if total > shown:
            lines.append(f"  ... and {total - shown} more")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
def inspect_timeline(
    path: str,
    timeline: bool = False,
    at: Optional[float] = None,
    diff: Optional[Sequence[float]] = None,
    series: Optional[Sequence[str]] = None,
    top_nodes: int = 10,
    as_json: bool = False,
) -> Tuple[int, str]:
    """Timeline inspection entry point: ``(exit_code, report_text)``.

    Exit code 2 when reconstruction fails (missing keyframe, ``t`` out of
    range) so CI can gate on ``repro inspect timeline.jsonl --at <t>``.
    """
    load = load_timeline(path)
    sections: List[str] = []
    doc: Dict[str, Any] = {
        "paths": load.paths,
        "skipped_lines": load.skipped_lines,
        "runs": [
            {
                "shard": run.scope[0],
                "run": run.scope[1],
                "samples": len(run.records),
                "t_min": run.t_min,
                "t_max": run.t_max,
            }
            for run in load.runs
        ],
    }
    try:
        if at is not None:
            if as_json:
                doc["at"] = {
                    f"{run.scope[0]}:{run.scope[1]}": state_at(run, at)
                    for run in load.runs
                }
            else:
                sections.append(render_at(load, at))
        if diff:
            t1, t2 = float(diff[0]), float(diff[1])
            if as_json:
                doc["diff"] = {
                    f"{run.scope[0]}:{run.scope[1]}": {
                        part: (
                            {
                                _display_key(k): list(v)
                                if isinstance(v, tuple)
                                else v
                                for k, v in entries.items()
                            }
                        )
                        for part, entries in diff_between(run, t1, t2).items()
                    }
                    for run in load.runs
                }
            else:
                sections.append(render_diff(load, t1, t2))
        if timeline or (at is None and not diff):
            if as_json:
                doc["series"] = {
                    f"{run.scope[0]}:{run.scope[1]}": {
                        "net": net_series(run),
                        **{
                            name: node_series(run, name)
                            for name in (series or DEFAULT_SERIES)
                        },
                    }
                    for run in load.runs
                }
            else:
                sections.append(
                    render_timeline(
                        load, series=series or DEFAULT_SERIES, top_nodes=top_nodes
                    )
                )
    except TimelineError as error:
        return 2, f"timeline error: {error}"
    if as_json:
        return 0, json.dumps(doc, indent=2, sort_keys=True, default=str)
    if load.skipped_lines or len(load.paths) > 1:
        sections.append(
            f"loader: {len(load.paths)} shard file(s), "
            f"{load.skipped_lines} non-timeline/unparseable line(s) skipped"
        )
    return 0, "\n\n".join(sections)
