"""First-divergence bisection between two fingerprinted executions.

``repro diverge`` answers the question every whole-run digest gate leaves
open: two runs disagree — *at which event*?  Each **side** of the
comparison is either

* a configuration to execute (event-kernel scheduler, worker count,
  kernel profiling on/off, an injected ``REPRO_RNG_PERTURB`` draw flip),
  run here on the canonical PDD scenario under a fingerprint; or
* a pre-recorded fingerprint checkpoint file (``file=...``) from any
  earlier run — e.g. a baseline built from another git revision.

The chained-digest property does the heavy lifting: checkpoints agree on
every index before the first divergent event and disagree on every index
after it, so :func:`bisect_checkpoints` binary-searches the common
checkpoint indices and finds the bracketing window in ``O(log
total-events)`` digest comparisons (the ``comparisons`` field reports the
exact count).  Executable sides are then re-run with a *detail window*
over that bracket to pin the first divergent event ``(time, seq,
handler)`` exactly, with the N preceding events from both streams for
context; an RNG draw ledger taken alongside each serial side names the
first draw site whose consumption count differs — the usual root cause.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.fingerprint import (
    FingerprintLoad,
    FingerprintRun,
    fingerprinting,
    load_fingerprints,
)
from repro.sim.rng import diff_ledgers, rng_ledger

#: Default checkpoint cadence for diverge runs: dense enough that the
#: detail window (one checkpoint interval plus context) stays small.
DEFAULT_CHECKPOINT_EVERY = 256

#: Events of context shown before the first divergent event.
DEFAULT_CONTEXT = 5


# ----------------------------------------------------------------------
# Side / scenario specs
# ----------------------------------------------------------------------
@dataclass
class SideSpec:
    """One side of the comparison: a config to run, or a recorded file.

    Parsed from a comma-separated ``key=value`` string
    (:meth:`parse`), e.g. ``"scheduler=calendar"``, ``"jobs=8"``,
    ``"perturb=medium:40,scheduler=heap"``, or ``"file=fp_base.jsonl"``.
    """

    label: str
    scheduler: Optional[str] = None
    jobs: int = 1
    profile: bool = False
    perturb: Optional[str] = None
    file: Optional[str] = None

    _KEYS = ("scheduler", "jobs", "profile", "perturb", "file")

    @classmethod
    def parse(cls, label: str, raw: str) -> "SideSpec":
        spec = cls(label=label)
        raw = raw.strip()
        if not raw:
            return spec
        for part in raw.split(","):
            key, sep, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or key not in cls._KEYS:
                raise ConfigurationError(
                    f"side {label}: expected comma-separated "
                    f"{'/'.join(cls._KEYS)}=... pairs, got {part!r}"
                )
            if key == "jobs":
                try:
                    spec.jobs = int(value)
                except ValueError:
                    raise ConfigurationError(
                        f"side {label}: jobs must be an integer, got {value!r}"
                    ) from None
                if spec.jobs < 1:
                    raise ConfigurationError(
                        f"side {label}: jobs must be >= 1, got {value!r}"
                    )
            elif key == "profile":
                spec.profile = value.lower() in ("1", "true", "yes", "on")
            else:
                setattr(spec, key, value)
        if spec.file is not None and (
            spec.scheduler or spec.perturb or spec.profile or spec.jobs != 1
        ):
            raise ConfigurationError(
                f"side {label}: file= is a recorded checkpoint stream; it "
                f"cannot be combined with run options"
            )
        return spec

    def describe(self) -> str:
        if self.file is not None:
            return f"file={self.file}"
        parts = [f"scheduler={self.scheduler or 'default'}", f"jobs={self.jobs}"]
        if self.profile:
            parts.append("profile=on")
        if self.perturb:
            parts.append(f"perturb={self.perturb}")
        return ",".join(parts)


@dataclass
class ScenarioSpec:
    """The canonical scenario both executable sides run.

    A reduced grid PDD discovery (the engine's representative workload):
    identical on both sides by construction, so any fingerprint
    divergence is attributable to the *configuration* difference.
    """

    seeds: Tuple[int, ...] = (1,)
    rows: int = 6
    cols: int = 6
    metadata_count: int = 400
    max_rounds: int = 3
    sim_cap_s: float = 120.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seeds": list(self.seeds),
            "rows": self.rows,
            "cols": self.cols,
            "metadata_count": self.metadata_count,
            "max_rounds": self.max_rounds,
            "sim_cap_s": self.sim_cap_s,
        }


def _scenario_trial(params: Dict[str, Any], seed: int) -> Any:
    """One fingerprinted trial (module-level so workers can pickle it)."""
    from repro.core.rounds import RoundConfig
    from repro.experiments.figures.common import pdd_experiment

    outcome = pdd_experiment(
        seed=seed,
        rows=int(params["rows"]),
        cols=int(params["cols"]),
        metadata_count=int(params["metadata_count"]),
        round_config=RoundConfig(max_rounds=int(params["max_rounds"])),
        sim_cap_s=float(params["sim_cap_s"]),
    )
    return outcome.to_trial_metrics()


# ----------------------------------------------------------------------
# Side execution
# ----------------------------------------------------------------------
@contextmanager
def _env(overrides: Dict[str, Optional[str]]) -> Iterator[None]:
    """Set (or unset, for ``None``) env vars for the block, then restore."""
    previous = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@dataclass
class SideRun:
    """One executed (or loaded) side: its checkpoint streams + ledger."""

    spec: SideSpec
    load: FingerprintLoad
    path: str
    ledger: Optional[Dict[str, Any]] = None


def run_side(
    spec: SideSpec,
    scenario: ScenarioSpec,
    workdir: str,
    checkpoint_every: int,
    detail: Optional[Tuple[int, int]] = None,
) -> SideRun:
    """Execute one side under a fingerprint (or load its recorded file).

    Serial sides (``jobs=1``) also run under an RNG draw ledger, whose
    snapshot feeds the draw-site diff in the report; the ledger only
    observes (wrapped streams draw identical values), so it never
    perturbs the side it is diagnosing.
    """
    if spec.file is not None:
        return SideRun(
            spec=spec, load=load_fingerprints(spec.file), path=spec.file
        )
    suffix = "" if detail is None else ".detail"
    path = os.path.join(workdir, f"side_{spec.label}{suffix}.jsonl")
    overrides: Dict[str, Optional[str]] = {
        "REPRO_SCHEDULER": spec.scheduler,
        "REPRO_RNG_PERTURB": spec.perturb,
        "REPRO_JOBS": str(spec.jobs),
        "REPRO_PROFILE": "1" if spec.profile else None,
        # Neutralize ambient fingerprint/recorder knobs: the side must
        # observe exactly the configuration the spec names.
        "REPRO_FINGERPRINT": None,
        "REPRO_TIMELINE": None,
    }
    ledger_snapshot: Optional[Dict[str, Any]] = None
    with ExitStack() as stack:
        stack.enter_context(_env(overrides))
        stack.enter_context(
            fingerprinting(
                path=path, checkpoint_every=checkpoint_every, detail=detail
            )
        )
        if spec.profile:
            from repro.obs.kernelprof import KernelProfiler

            stack.enter_context(KernelProfiler().activate())
        if spec.jobs == 1:
            ledger = stack.enter_context(rng_ledger())
            for seed in scenario.seeds:
                _scenario_trial(scenario.to_dict(), seed)
            ledger_snapshot = ledger.snapshot()
        else:
            from repro.experiments.runner import run_trials

            run_trials(
                partial(_scenario_trial, scenario.to_dict()),
                seeds=scenario.seeds,
                jobs=spec.jobs,
            )
    return SideRun(
        spec=spec,
        load=load_fingerprints(path),
        path=path,
        ledger=ledger_snapshot,
    )


# ----------------------------------------------------------------------
# Pairing + bisection
# ----------------------------------------------------------------------
def _digest_map(run: FingerprintRun) -> Dict[int, str]:
    return {
        int(record["i"]): str(record["digest"]) for record in run.checkpoints
    }


def _common_prefix(run_a: FingerprintRun, run_b: FingerprintRun) -> int:
    """How many leading common-index checkpoints agree (pairing metric)."""
    map_a, map_b = _digest_map(run_a), _digest_map(run_b)
    agree = 0
    for index in sorted(set(map_a) & set(map_b)):
        if map_a[index] != map_b[index]:
            break
        agree += 1
    return agree


def pair_runs(
    load_a: FingerprintLoad, load_b: FingerprintLoad
) -> List[Tuple[Optional[FingerprintRun], Optional[FingerprintRun]]]:
    """Match each side-A run with its side-B counterpart.

    Serial campaigns produce runs in deterministic creation order, but a
    ``jobs=N`` side's shard-merged run order depends on worker
    scheduling.  So: first match runs whose *final* digests are equal
    (fully clean pairs, greedy in order), then pair the leftovers by
    longest agreeing checkpoint prefix — the divergent run pairs.
    Unmatched leftovers (different run counts) pair with ``None``.
    """
    remaining_b: List[FingerprintRun] = list(load_b.runs)
    pairs: List[Tuple[Optional[FingerprintRun], Optional[FingerprintRun]]] = []
    divergent_a: List[FingerprintRun] = []
    for run_a in load_a.runs:
        match = next(
            (
                run_b
                for run_b in remaining_b
                if run_b.final_digest == run_a.final_digest
            ),
            None,
        )
        if match is not None:
            remaining_b.remove(match)
            pairs.append((run_a, match))
        else:
            divergent_a.append(run_a)
    for run_a in divergent_a:
        if not remaining_b:
            pairs.append((run_a, None))
            continue
        best = max(remaining_b, key=lambda run_b: _common_prefix(run_a, run_b))
        remaining_b.remove(best)
        pairs.append((run_a, best))
    for run_b in remaining_b:
        pairs.append((None, run_b))
    return pairs


@dataclass
class CheckpointDivergence:
    """The bracketing window the checkpoint bisection found.

    ``kind`` is ``"checkpoint"`` (a common-index checkpoint disagrees —
    the first divergent event lies in ``(last_common, first_divergent]``),
    ``"tail"`` (every common checkpoint agrees but the streams end
    differently — divergence after ``last_common``), or ``"none"``.
    """

    kind: str
    comparisons: int = 0
    last_common: int = 0
    first_divergent: Optional[int] = None
    checkpoint_a: Optional[Dict[str, Any]] = None
    checkpoint_b: Optional[Dict[str, Any]] = None


def bisect_checkpoints(
    run_a: FingerprintRun, run_b: FingerprintRun
) -> CheckpointDivergence:
    """Binary-search two checkpoint streams for the first disagreement.

    Chained digests are monotone — equal at every common index before the
    first divergent event, different at every common index after — so one
    comparison at the last common index detects divergence and
    ``ceil(log2(n))`` more localize it.  ``comparisons`` records the
    exact number of digest comparisons spent.
    """
    map_a, map_b = _digest_map(run_a), _digest_map(run_b)
    common = sorted(set(map_a) & set(map_b))
    comparisons = 0
    if common:
        comparisons += 1
        if map_a[common[-1]] == map_b[common[-1]]:
            last = common[-1]
            if run_a.total_events != run_b.total_events:
                return CheckpointDivergence(
                    kind="tail", comparisons=comparisons, last_common=last
                )
            return CheckpointDivergence(
                kind="none", comparisons=comparisons, last_common=last
            )
        lo, hi = 0, len(common) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            comparisons += 1
            if map_a[common[mid]] == map_b[common[mid]]:
                lo = mid + 1
            else:
                hi = mid
        first = common[lo]
        ckpt_a = next(c for c in run_a.checkpoints if int(c["i"]) == first)
        ckpt_b = next(c for c in run_b.checkpoints if int(c["i"]) == first)
        return CheckpointDivergence(
            kind="checkpoint",
            comparisons=comparisons,
            last_common=common[lo - 1] if lo > 0 else 0,
            first_divergent=first,
            checkpoint_a=ckpt_a,
            checkpoint_b=ckpt_b,
        )
    if run_a.total_events or run_b.total_events:
        return CheckpointDivergence(kind="tail", comparisons=comparisons)
    return CheckpointDivergence(kind="none", comparisons=comparisons)


# ----------------------------------------------------------------------
# Event-level localization
# ----------------------------------------------------------------------
_EVENT_FIELDS = ("t", "prio", "seq", "h", "args")


@dataclass
class EventDivergence:
    """The first divergent event, field-by-field, with leading context."""

    index: int
    event_a: Optional[Dict[str, Any]]
    event_b: Optional[Dict[str, Any]]
    fields: List[str] = field(default_factory=list)
    context_a: List[Dict[str, Any]] = field(default_factory=list)
    context_b: List[Dict[str, Any]] = field(default_factory=list)


def first_divergent_event(
    events_a: Sequence[Dict[str, Any]],
    events_b: Sequence[Dict[str, Any]],
    window: Tuple[int, int],
    context: int,
) -> Optional[EventDivergence]:
    """Scan two detail-record streams for the first divergent event.

    The window starts after the last agreeing checkpoint, so every
    earlier event is known-identical; within it the *chained digest*
    carried on each detail record is the arbiter (it catches payload
    differences the identity fields alone might miss), and the identity
    fields name what changed.
    """
    by_a = {int(rec["i"]): rec for rec in events_a}
    by_b = {int(rec["i"]): rec for rec in events_b}
    lo, hi = window
    for index in range(lo, hi + 1):
        rec_a, rec_b = by_a.get(index), by_b.get(index)
        if rec_a is None and rec_b is None:
            break
        if (
            rec_a is None
            or rec_b is None
            or rec_a.get("digest") != rec_b.get("digest")
        ):
            fields = [
                name
                for name in _EVENT_FIELDS
                if (rec_a or {}).get(name) != (rec_b or {}).get(name)
            ]
            take = range(max(lo, index - context), index)
            return EventDivergence(
                index=index,
                event_a=rec_a,
                event_b=rec_b,
                fields=fields,
                context_a=[by_a[i] for i in take if i in by_a],
                context_b=[by_b[i] for i in take if i in by_b],
            )
    return None


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class DivergeReport:
    """Everything ``repro diverge`` found, renderable and JSON-able."""

    side_a: str
    side_b: str
    scenario: Optional[Dict[str, Any]]
    checkpoint_every: int
    runs_a: int = 0
    runs_b: int = 0
    clean_pairs: int = 0
    pair_index: Optional[int] = None
    divergence: Optional[CheckpointDivergence] = None
    event: Optional[EventDivergence] = None
    ledger_skews: List[Dict[str, Any]] = field(default_factory=list)
    stream_skews: List[str] = field(default_factory=list)

    @property
    def diverged(self) -> bool:
        return self.divergence is not None and self.divergence.kind != "none"

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "side_a": self.side_a,
            "side_b": self.side_b,
            "scenario": self.scenario,
            "checkpoint_every": self.checkpoint_every,
            "runs": {"a": self.runs_a, "b": self.runs_b},
            "clean_pairs": self.clean_pairs,
            "diverged": self.diverged,
        }
        if self.divergence is not None:
            doc["divergence"] = {
                "kind": self.divergence.kind,
                "comparisons": self.divergence.comparisons,
                "last_common": self.divergence.last_common,
                "first_divergent_checkpoint": self.divergence.first_divergent,
            }
        if self.event is not None:
            doc["event"] = {
                "index": self.event.index,
                "fields": self.event.fields,
                "a": self.event.event_a,
                "b": self.event.event_b,
            }
        if self.ledger_skews:
            doc["ledger_skews"] = self.ledger_skews
        if self.stream_skews:
            doc["stream_skews"] = self.stream_skews
        return doc

    def render(self) -> str:
        lines = [
            f"diverge: A[{self.side_a}] vs B[{self.side_b}]",
            f"  runs: A={self.runs_a} B={self.runs_b} "
            f"(identical pairs: {self.clean_pairs})",
        ]
        if not self.diverged:
            lines.append("  no divergence: all paired runs carry identical "
                         "chained digests")
            return "\n".join(lines)
        div = self.divergence
        assert div is not None
        lines.append(
            f"  divergent run pair #{self.pair_index}: first disagreement "
            f"bracketed in {div.comparisons} checkpoint comparisons"
        )
        if div.kind == "checkpoint" and div.checkpoint_a and div.checkpoint_b:
            lines.append(
                f"  checkpoints agree through event {div.last_common}, "
                f"disagree at event {div.first_divergent}:"
            )
            for side, ckpt in (("A", div.checkpoint_a), ("B", div.checkpoint_b)):
                lines.append(
                    f"    {side}: digest {ckpt['digest']}  "
                    f"t={ckpt['t']} seq={ckpt['seq']} h={ckpt['h']}"
                )
        elif div.kind == "tail":
            lines.append(
                f"  checkpoints agree through event {div.last_common}; "
                f"one stream continues past the other (tail divergence)"
            )
        if self.event is not None:
            ev = self.event
            lines.append(f"  first divergent event: #{ev.index}")
            for side, rec, ctx in (
                ("A", ev.event_a, ev.context_a),
                ("B", ev.event_b, ev.context_b),
            ):
                for prev in ctx[-3:]:
                    lines.append(
                        f"    {side}  ... #{prev['i']} t={prev['t']} "
                        f"seq={prev['seq']} {prev['h']}"
                    )
                if rec is None:
                    lines.append(f"    {side} >>> (stream ended)")
                else:
                    lines.append(
                        f"    {side} >>> t={rec['t']} prio={rec['prio']} "
                        f"seq={rec['seq']} h={rec['h']} args={rec['args']}"
                    )
            if ev.fields:
                lines.append(f"  divergent fields: {', '.join(ev.fields)}")
        if self.ledger_skews:
            first = self.ledger_skews[0]
            lines.append(
                f"  first RNG draw-site skew: {first['site']} "
                f"(A drew {first['a']}, B drew {first['b']}; "
                f"{len(self.ledger_skews)} skewed site(s) total)"
            )
        elif self.stream_skews:
            lines.append(
                "  RNG draw counts match on every site, but drawn values "
                f"differ on stream(s): {', '.join(self.stream_skews)}"
            )
        return "\n".join(lines)


def suggest_command(
    side_a: str, side_b: str, scenario: Optional[ScenarioSpec] = None
) -> str:
    """The ready-to-paste ``repro diverge`` invocation the gates print."""
    parts = ["python -m repro diverge", f"--a '{side_a}'", f"--b '{side_b}'"]
    if scenario is not None:
        parts.append(
            f"--seeds {','.join(str(s) for s in scenario.seeds)} "
            f"--rows {scenario.rows} --cols {scenario.cols} "
            f"--metadata-count {scenario.metadata_count}"
        )
    return " ".join(parts)


def diverge(
    spec_a: SideSpec,
    spec_b: SideSpec,
    scenario: Optional[ScenarioSpec] = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    context: int = DEFAULT_CONTEXT,
    workdir: Optional[str] = None,
) -> DivergeReport:
    """Run (or load) both sides, bisect, and localize the first divergence.

    Executable sides are run twice at most: once with checkpoints only,
    then — if the bisection finds a divergent bracket — once more with a
    detail window covering ``(last_common - context, first_divergent]``
    to name the exact event.  Recorded-file sides are never re-run; if
    their streams carry detail records for the bracket those are used,
    otherwise the report stops at the checkpoint window.
    """
    if scenario is None:
        scenario = ScenarioSpec()
    both_files = spec_a.file is not None and spec_b.file is not None
    with ExitStack() as stack:
        if workdir is None:
            workdir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-diverge-")
            )
        else:
            os.makedirs(workdir, exist_ok=True)
        side_a = run_side(spec_a, scenario, workdir, checkpoint_every)
        side_b = run_side(spec_b, scenario, workdir, checkpoint_every)
        report = DivergeReport(
            side_a=spec_a.describe(),
            side_b=spec_b.describe(),
            scenario=None if both_files else scenario.to_dict(),
            checkpoint_every=checkpoint_every,
            runs_a=len(side_a.load.runs),
            runs_b=len(side_b.load.runs),
        )
        pairs = pair_runs(side_a.load, side_b.load)
        divergent: Optional[
            Tuple[int, FingerprintRun, FingerprintRun, CheckpointDivergence]
        ] = None
        for index, (run_a, run_b) in enumerate(pairs):
            if run_a is None or run_b is None:
                continue
            result = bisect_checkpoints(run_a, run_b)
            if result.kind == "none":
                report.clean_pairs += 1
            elif divergent is None:
                divergent = (index, run_a, run_b, result)
        if divergent is None:
            unmatched = [pair for pair in pairs if None in pair]
            if unmatched:
                report.divergence = CheckpointDivergence(kind="tail")
                report.pair_index = pairs.index(unmatched[0])
            return report
        pair_index, run_a, run_b, result = divergent
        report.pair_index = pair_index
        report.divergence = result

        if side_a.ledger is not None and side_b.ledger is not None:
            report.ledger_skews = diff_ledgers(side_a.ledger, side_b.ledger)
            streams_a = side_a.ledger.get("streams", {})
            streams_b = side_b.ledger.get("streams", {})
            report.stream_skews = sorted(
                name
                for name in set(streams_a) | set(streams_b)
                if streams_a.get(name) != streams_b.get(name)
            )

        # Bracket for the event-level pass: everything before last_common
        # is known-identical; the divergent event is at most one
        # checkpoint interval past it.
        hi = result.first_divergent
        if hi is None:
            hi = result.last_common + checkpoint_every
        lo = max(1, result.last_common + 1 - context)
        window = (lo, hi)

        events_a = _detail_events(
            side_a, scenario, workdir, checkpoint_every, window, run_a
        )
        events_b = _detail_events(
            side_b, scenario, workdir, checkpoint_every, window, run_b
        )
        if events_a is not None and events_b is not None:
            report.event = first_divergent_event(
                events_a, events_b, window, context
            )
        return report


def _detail_events(
    side: SideRun,
    scenario: ScenarioSpec,
    workdir: str,
    checkpoint_every: int,
    window: Tuple[int, int],
    target: FingerprintRun,
) -> Optional[List[Dict[str, Any]]]:
    """Detail records covering ``window`` for the divergent run ``target``.

    Recorded-file sides can only use detail records already present;
    executable sides re-run deterministically with the window enabled
    (same spec, same seeds — the re-run reproduces the original streams
    exactly) and the re-run's copy of ``target`` is found by final
    digest, falling back to longest agreeing checkpoint prefix (robust
    to ``jobs>1`` shard-merge order).
    """
    if side.spec.file is not None:
        return target.events or None
    rerun = run_side(
        side.spec, scenario, workdir, checkpoint_every, detail=window
    )
    for run in rerun.load.runs:
        if run.final_digest == target.final_digest:
            return run.events
    if rerun.load.runs:
        best = max(
            rerun.load.runs, key=lambda run: _common_prefix(run, target)
        )
        return best.events
    return None


def expected_comparisons(total_checkpoints: int) -> int:
    """Upper bound the bisection must respect: 1 + ceil(log2(n))."""
    if total_checkpoints <= 1:
        return 1
    return 1 + math.ceil(math.log2(total_checkpoints))


__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_CONTEXT",
    "CheckpointDivergence",
    "DivergeReport",
    "EventDivergence",
    "ScenarioSpec",
    "SideSpec",
    "bisect_checkpoints",
    "diverge",
    "expected_comparisons",
    "first_divergent_event",
    "pair_runs",
    "run_side",
    "suggest_command",
]
