"""Event-stream fingerprinting: chained digests with checkpoint records.

Every determinism gate in this repo (parallel-vs-serial parity, scheduler
order-identity, the ``bench --check`` digest gate) compares whole-run
outputs — which says *that* two runs diverged, never *where*.  A
:class:`FingerprintConfig` closes that gap: while one is installed, the
simulator dispatch loop canonically encodes every fired event — virtual
time, priority, sequence number, handler key, and scalar payload fields —
into a **rolling chained digest** (one incremental BLAKE2b per simulator
run), and every ``checkpoint_every`` events emits a compact checkpoint
record ``{"fp": "ckpt", "i": N, "digest": ..., "t": ..., "seq": ...,
"h": ...}`` to a JSONL stream that shards per worker exactly like trace
and timeline files.

Because the digest is *chained* (checkpoint ``N`` covers events ``1..N``),
two runs' checkpoint streams agree on every checkpoint before their first
divergent event and disagree on every checkpoint after it — so
:mod:`repro.obs.diverge` can binary-search the streams to the first
divergent event in ``O(log total-events)`` checkpoint comparisons, then
re-run with a *detail window* (``detail=(lo, hi)``) that captures full
per-event records only inside the bracketing interval.

Zero-cost-when-disabled contract
--------------------------------

With no fingerprint installed the dispatch loop takes its original branch
(the only cost is one ``configured_fingerprint()`` call per ``run()``),
so fingerprint-off runs are bit-identical to seed — enforced by the bench
digest gate.  With a fingerprint active, encoding and hashing wrap
*around* ``event.fire()`` without touching event order, virtual time, or
RNG draws, so fingerprinted runs keep exact output digests; only wall
time changes (measured <10% on mobility_pdd).

Environment knobs (how the config crosses process boundaries):

* ``REPRO_FINGERPRINT=<file.jsonl>`` — stream checkpoints to this file
  (per-worker shards ``<stem>.k<ext>`` under ``--jobs N``);
* ``REPRO_FINGERPRINT_EVERY=<K>`` — checkpoint cadence (default 512);
* ``REPRO_FINGERPRINT_DETAIL=<lo>:<hi>`` — also write one ``"event"``
  record per fired event with index in ``[lo, hi]``.
"""

from __future__ import annotations

import json
import os
import struct
from contextlib import contextmanager
from hashlib import blake2b
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.durable import DurableJsonlWriter

#: Default events per checkpoint record.
DEFAULT_CHECKPOINT_EVERY = 512

#: Hex digits kept from each chained digest (BLAKE2b-128).
DIGEST_SIZE = 16

#: Field separator inside the canonical event encoding.
_SEP = b"\x1f"

#: Binary encoding of the event identity triple (time, priority, sequence):
#: one C call instead of three reprs on the hot path, and ``<d`` is exact
#: for every float (no shortest-repr rounding work).  The fixed 24-byte
#: width means no separator is needed between the identity and the handler
#: key, and checkpoint records can recover the last event's identity from
#: the encoded stream instead of bookkeeping it per event.
_IDENTITY = struct.Struct("<dqq")
_PACK_IDENTITY = _IDENTITY.pack
_UNPACK_IDENTITY = _IDENTITY.unpack


# ----------------------------------------------------------------------
# Canonical encoding
# ----------------------------------------------------------------------
def canon_value(value: Any) -> str:
    """Canonical string form of one payload value.

    Scalars encode by ``repr`` (deterministic for int/float/str/bool/
    None); bytes by length + CRC; tuples/lists/dicts recurse (dicts in
    sorted key order).  Anything else contributes its *class* name only —
    object identity (memory addresses, default reprs) must never leak
    into a fingerprint, and the scalar fields plus the ``(time, priority,
    sequence, handler)`` identity already pin the event.  Objects may opt
    into richer encoding with a ``fingerprint()`` method returning a
    deterministic scalar.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return repr(value)
    if isinstance(value, bytes):
        import zlib

        return f"bytes[{len(value)}]#{zlib.crc32(value):08x}"
    if isinstance(value, (tuple, list)):
        inner = ",".join(canon_value(item) for item in value)
        return f"[{inner}]"
    if isinstance(value, (set, frozenset)):
        inner = ",".join(sorted(canon_value(item) for item in value))
        return f"{{{inner}}}"
    if isinstance(value, dict):
        inner = ",".join(
            f"{canon_value(key)}:{canon_value(item)}"
            for key, item in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
        return f"{{{inner}}}"
    custom = getattr(value, "fingerprint", None)
    if callable(custom):
        return f"<{type(value).__qualname__}:{canon_value(custom())}>"
    return f"<{type(value).__qualname__}>"


def handler_key(callback: Callable[..., Any]) -> str:
    """``module.qualname`` identity of an event's handler function."""
    func = getattr(callback, "__func__", callback)
    module = getattr(func, "__module__", None) or "?"
    name = (
        getattr(func, "__qualname__", None)
        or getattr(func, "__name__", None)
        or "?"
    )
    return f"{module}.{name}"


# ----------------------------------------------------------------------
# Configuration (process-wide, mirrors RecordingConfig)
# ----------------------------------------------------------------------
class FingerprintWriter(DurableJsonlWriter):
    """Streams fingerprint records to a JSONL file (durable like traces)."""

    def __init__(self, path: str) -> None:
        super().__init__(path, finalize=True)


class FingerprintConfig:
    """Where and how densely to fingerprint.

    One config is shared by every simulator created while it is active;
    all their streams append to the same file (records scoped by the
    simulator's trace run id, exactly like trace events).  With
    ``path=None`` records stay in memory on each simulator's
    :class:`EventFingerprinter` (collected on :attr:`streams`).

    Args:
        path: JSONL target, or ``None`` for in-memory records.
        checkpoint_every: Events per checkpoint record.
        detail: Optional ``(lo, hi)`` event-index window (inclusive,
            1-based) inside which full per-event records are written.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        detail: Optional[Tuple[int, int]] = None,
    ) -> None:
        if int(checkpoint_every) < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every!r}"
            )
        if detail is not None:
            lo, hi = int(detail[0]), int(detail[1])
            if lo < 1 or hi < lo:
                raise ConfigurationError(
                    f"detail window must be 1 <= lo <= hi, got {detail!r}"
                )
            detail = (lo, hi)
        self.path = str(path) if path is not None else None
        self.checkpoint_every = int(checkpoint_every)
        self.detail = detail
        self._writer: Optional[FingerprintWriter] = None
        #: In-memory fingerprinters created under this config (creation
        #: order — the deterministic trial order for in-process runs).
        self.streams: List["EventFingerprinter"] = []

    def writer(self) -> Optional[FingerprintWriter]:
        """The shared (lazily opened) writer, or None (memory mode)."""
        if self.path is None:
            return None
        if self._writer is None:
            self._writer = FingerprintWriter(self.path)
        return self._writer

    def current_writer(self) -> Optional[FingerprintWriter]:
        """The writer if one is already open; never opens one.

        The parallel runner's attempt markers use this: a marker must
        never force an otherwise-idle worker shard into existence.
        """
        return self._writer

    def reshard(self, index: int) -> None:
        """Re-point a forked worker at its own ``<stem>.<k><ext>`` shard."""
        self._writer = None
        if self.path is not None:
            stem, ext = os.path.splitext(self.path)
            self.path = f"{stem}.{index}{ext}"

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None


_GLOBAL_FINGERPRINT: List[FingerprintConfig] = []
_ENV_FINGERPRINT: Optional[Tuple[Tuple[str, ...], FingerprintConfig]] = None


def install_global_fingerprint(config: FingerprintConfig) -> FingerprintConfig:
    """Fingerprint every simulator run from now on."""
    _GLOBAL_FINGERPRINT.append(config)
    return config


def remove_global_fingerprint(config: FingerprintConfig) -> None:
    """Stop fingerprinting new simulators through ``config``."""
    try:
        _GLOBAL_FINGERPRINT.remove(config)
    except ValueError:
        pass


def _parse_every(raw: Optional[str]) -> int:
    if not raw:
        return DEFAULT_CHECKPOINT_EVERY
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_FINGERPRINT_EVERY must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(
            f"REPRO_FINGERPRINT_EVERY must be a positive integer, got {raw!r}"
        )
    return value


def _parse_detail(raw: Optional[str]) -> Optional[Tuple[int, int]]:
    if not raw:
        return None
    try:
        lo_raw, _, hi_raw = raw.partition(":")
        lo, hi = int(lo_raw), int(hi_raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_FINGERPRINT_DETAIL must be '<lo>:<hi>' event indices, "
            f"got {raw!r}"
        ) from None
    if lo < 1 or hi < lo:
        raise ConfigurationError(
            f"REPRO_FINGERPRINT_DETAIL must satisfy 1 <= lo <= hi, got {raw!r}"
        )
    return (lo, hi)


def _env_fingerprint() -> Optional[FingerprintConfig]:
    global _ENV_FINGERPRINT
    path = os.environ.get("REPRO_FINGERPRINT")
    if not path:
        return None
    key = (
        path,
        os.environ.get("REPRO_FINGERPRINT_EVERY", ""),
        os.environ.get("REPRO_FINGERPRINT_DETAIL", ""),
    )
    if _ENV_FINGERPRINT is not None and _ENV_FINGERPRINT[0] == key:
        return _ENV_FINGERPRINT[1]
    config = FingerprintConfig(
        path=path,
        checkpoint_every=_parse_every(key[1]),
        detail=_parse_detail(key[2]),
    )
    _ENV_FINGERPRINT = (key, config)
    return config


def configured_fingerprint() -> Optional[FingerprintConfig]:
    """The fingerprint in effect: installed config, else the env knobs."""
    if _GLOBAL_FINGERPRINT:
        return _GLOBAL_FINGERPRINT[-1]
    return _env_fingerprint()


@contextmanager
def fingerprinting(
    path: Optional[str] = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    detail: Optional[Tuple[int, int]] = None,
) -> Iterator[FingerprintConfig]:
    """Scope a process-wide fingerprint (CLI / diverge engine)."""
    config = install_global_fingerprint(
        FingerprintConfig(
            path=path, checkpoint_every=checkpoint_every, detail=detail
        )
    )
    try:
        yield config
    finally:
        remove_global_fingerprint(config)
        config.close()


def reshard_for_worker(index: int) -> None:
    """Point this worker process's fingerprint at its own shard.

    Called from the parallel runner's worker initializer (after fork);
    also updates ``REPRO_FINGERPRINT`` so env-activated fingerprinting
    resolves to the shard path for the rest of the worker's life.
    """
    global _ENV_FINGERPRINT
    config = configured_fingerprint()
    if config is None or config.path is None:
        return
    config.reshard(index)
    if os.environ.get("REPRO_FINGERPRINT"):
        os.environ["REPRO_FINGERPRINT"] = config.path
        key = (
            config.path,
            os.environ.get("REPRO_FINGERPRINT_EVERY", ""),
            os.environ.get("REPRO_FINGERPRINT_DETAIL", ""),
        )
        _ENV_FINGERPRINT = (key, config)


def _clear_fingerprint() -> None:
    """Drop configs inherited by a forked worker process (tests only)."""
    global _ENV_FINGERPRINT
    _GLOBAL_FINGERPRINT.clear()
    _ENV_FINGERPRINT = None


# ----------------------------------------------------------------------
# Per-simulator stream
# ----------------------------------------------------------------------
class EventFingerprinter:
    """One simulator run's rolling chained digest + checkpoint emitter.

    Created lazily by the simulator's fingerprint dispatch branch on the
    first ``run()`` under an installed config.  ``note(event)`` is the
    hot path: encode canonically, fold into the incremental hash, emit a
    checkpoint every K events (and a final checkpoint whenever a
    ``run()`` call ends with events unreported, so the stream tail always
    carries the run's closing digest).
    """

    __slots__ = (
        "config",
        "run_id",
        "records",
        "note",
        "_hash",
        "_buffer",
        "_writer",
        "_every",
        "_detail_lo",
        "_detail_hi",
        "_key_cache",
        "_type_cache",
        "_last_ckpt",
        "_flushed",
        "_tail",
        "_target",
    )

    def __init__(self, sim: Any, config: FingerprintConfig) -> None:
        self.config = config
        self.run_id = sim.trace.run_id
        self.records: List[Dict[str, Any]] = []
        self._hash = blake2b(digest_size=DIGEST_SIZE)
        #: Encoded events not yet folded into ``_hash`` (flushed at every
        #: checkpoint / detail record / digest read — batching the hash
        #: updates keeps the per-event cost to an append).  The event
        #: index is ``_flushed + len(_buffer)``, so the hot path never
        #: maintains a counter.
        self._buffer: List[bytes] = []
        self._writer = config.writer()
        self._every = config.checkpoint_every
        detail = config.detail
        self._detail_lo = detail[0] if detail is not None else 0
        self._detail_hi = detail[1] if detail is not None else -1
        #: handler func -> canonical key bytes.
        self._key_cache: Dict[Any, bytes] = {}
        #: type -> constant encoding, for payload classes whose instances
        #: all encode identically (no ``fingerprint()`` method, not a
        #: scalar/container) — skips the canon_value dispatch per event.
        self._type_cache: Dict[type, bytes] = {}
        self._last_ckpt = 0
        self._flushed = 0
        #: Last encoded event folded into the hash — checkpoint records
        #: recover ``(t, seq, h)`` from it instead of per-event stores.
        self._tail: Optional[bytes] = None
        #: Buffer length at which the next periodic checkpoint is due
        #: (a one-element list so the ``note`` closure and the flush path
        #: share it without attribute traffic on the hot path).
        self._target = [self._every]
        if self._writer is None:
            config.streams.append(self)
        self._emit(
            {
                "fp": "meta",
                "run": self.run_id,
                "every": self._every,
                "scheduler": sim.scheduler_name,
            }
        )
        self.note = self._make_note()

    # ------------------------------------------------------------------
    @property
    def index(self) -> int:
        """Events folded so far (hashed batches + pending buffer)."""
        return self._flushed + len(self._buffer)

    def _make_note(self) -> Callable[[Any], None]:
        """Build the hot-path closure with all per-event state in cells.

        ``note(event)`` fires once per dispatched event; binding the
        caches, buffer, and packers as closure cells (instead of ``self``
        attributes) shaves the lookups that dominate at ~1µs/event.
        Encoded events accumulate in the buffer and fold into the
        incremental hash in batches; payload args hit a per-type constant
        cache for opaque objects and an inline scalar fast path, so the
        full :func:`canon_value` dispatch only runs for containers and
        first-seen classes.
        """
        key_cache = self._key_cache
        key_get = key_cache.get
        type_cache = self._type_cache
        type_get = type_cache.get
        buffer = self._buffer
        append = buffer.append
        pack = _PACK_IDENTITY
        sep = _SEP
        join = _SEP.join
        target = self._target
        checkpoint = self._checkpoint
        has_detail = self.config.detail is not None
        self_ref = self

        def note(event: Any) -> None:
            callback = event.callback
            func = getattr(callback, "__func__", callback)
            key = key_get(func)
            if key is None:
                key = key_cache[func] = handler_key(callback).encode(
                    "utf-8", "backslashreplace"
                )
            args = event.args
            if args:
                parts = [key]
                for arg in args:
                    cls = type(arg)
                    constant = type_get(cls)
                    if constant is not None:
                        parts.append(constant)
                    elif cls is int:
                        parts.append(b"%d" % arg)
                    elif cls is str or cls is float or cls is bool:
                        parts.append(
                            repr(arg).encode("utf-8", "backslashreplace")
                        )
                    elif arg is None:
                        parts.append(b"None")
                    else:
                        encoded_arg = canon_value(arg).encode(
                            "utf-8", "backslashreplace"
                        )
                        if not isinstance(
                            arg,
                            (bytes, tuple, list, set, frozenset, dict),
                        ) and getattr(arg, "fingerprint", None) is None:
                            # Every instance of this class encodes to the
                            # same constant (identity never leaks).
                            type_cache[cls] = encoded_arg
                        parts.append(encoded_arg)
                append(
                    pack(event.time, event.priority, event.sequence)
                    + join(parts)
                )
            else:
                append(
                    pack(event.time, event.priority, event.sequence) + key
                )
            if has_detail:
                self_ref._maybe_detail(event, key, args)
            if len(buffer) == target[0]:
                checkpoint()

        return note

    def _maybe_detail(self, event: Any, key: bytes, args: Any) -> None:
        index = self._flushed + len(self._buffer)
        if self._detail_lo <= index <= self._detail_hi:
            self._flush_hash()
            self._emit(
                {
                    "fp": "event",
                    "run": self.run_id,
                    "i": index,
                    "t": event.time,
                    "prio": event.priority,
                    "seq": event.sequence,
                    "h": key.decode("utf-8", "backslashreplace"),
                    "args": [canon_value(arg) for arg in args],
                    "digest": self._hash.copy().hexdigest(),
                }
            )

    def flush_checkpoint(self) -> None:
        """Emit a closing checkpoint if events fired since the last one."""
        if self._flushed + len(self._buffer) > self._last_ckpt:
            self._checkpoint()

    def _flush_hash(self) -> None:
        buffer = self._buffer
        if buffer:
            self._hash.update(b"".join(buffer))
            count = len(buffer)
            self._flushed += count
            # Keep the buffer-length checkpoint trigger honest across
            # mid-interval flushes (detail records, digest reads).
            self._target[0] -= count
            self._tail = buffer[-1]
            buffer.clear()

    def _checkpoint(self) -> None:
        index = self._flushed + len(self._buffer)
        self._last_ckpt = index
        self._flush_hash()
        self._target[0] = self._every
        tail = self._tail
        if tail is not None:
            time, _prio, seq = _UNPACK_IDENTITY(tail[:24])
            handler = tail[24:].split(_SEP, 1)[0].decode(
                "utf-8", "backslashreplace"
            )
        else:
            time, seq, handler = 0.0, -1, ""
        self._emit(
            {
                "fp": "ckpt",
                "run": self.run_id,
                "i": index,
                "digest": self._hash.copy().hexdigest(),
                "t": time,
                "seq": seq,
                "h": handler,
            }
        )

    def _emit(self, doc: Dict[str, Any]) -> None:
        if self._writer is not None:
            self._writer.write_doc(doc)
        else:
            self.records.append(doc)

    @property
    def digest(self) -> str:
        """The chained digest over every event folded so far."""
        self._flush_hash()
        return self._hash.copy().hexdigest()


# ----------------------------------------------------------------------
# Loading (shard-aware, mirrors the trace/timeline loaders)
# ----------------------------------------------------------------------
class FingerprintRun:
    """One simulator run's fingerprint records, in event-index order.

    Attributes:
        scope: ``(shard, run)`` identity scope.
        meta: The run's ``"meta"`` record (may be empty on damaged files).
        checkpoints: ``"ckpt"`` records sorted by event index ``i``.
        events: ``"event"`` detail records sorted by ``i``.
    """

    def __init__(self, scope: Tuple[str, int]) -> None:
        self.scope = scope
        self.meta: Dict[str, Any] = {}
        self.checkpoints: List[Dict[str, Any]] = []
        self.events: List[Dict[str, Any]] = []

    @property
    def final_digest(self) -> Optional[str]:
        """The last checkpoint's chained digest (``None`` if no events)."""
        return (
            str(self.checkpoints[-1]["digest"]) if self.checkpoints else None
        )

    @property
    def total_events(self) -> int:
        return int(self.checkpoints[-1]["i"]) if self.checkpoints else 0


class FingerprintLoad:
    """Every run found across the resolved fingerprint shard files."""

    def __init__(
        self, runs: List[FingerprintRun], paths: List[str], skipped: int
    ) -> None:
        self.runs = runs
        self.paths = paths
        self.skipped_lines = skipped

    def combined_digest(self) -> str:
        """Order-independent digest over every run's final chained digest.

        Worker scheduling makes *which shard* a trial lands in (and hence
        the shard-merged run order) nondeterministic, but the *set* of
        per-run digests is not: a ``jobs=N`` campaign must produce exactly
        the runs a serial campaign does.  Hashing the sorted final digests
        makes serial and merged parallel streams directly comparable.
        """
        digests = sorted(
            run.final_digest or "" for run in self.runs
        )
        fold = blake2b(digest_size=DIGEST_SIZE)
        for digest in digests:
            fold.update(digest.encode("ascii"))
            fold.update(b"\n")
        return fold.hexdigest()


def load_fingerprints(path: str) -> FingerprintLoad:
    """Load and scope the fingerprint file(s) named by ``path``.

    Shard resolution matches trace files (plain file + ``<stem>.k<ext>``
    siblings, directory, or glob).  Unparseable lines — including the
    truncated final line a killed worker leaves — and provenance headers
    are skipped; records are ordered by event index within each
    ``(shard, run)`` scope.
    """
    from repro.obs.spans import resolve_trace_paths

    paths = resolve_trace_paths(path)
    runs: Dict[Tuple[str, int], FingerprintRun] = {}
    order: List[Tuple[str, int]] = []
    skipped = 0
    for file_path in paths:
        shard = os.path.basename(file_path)
        with open(file_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                if not isinstance(record, dict):
                    skipped += 1
                    continue
                if "provenance" in record or "attempt" in record:
                    # Provenance headers and the parallel runner's attempt
                    # commit/abort markers are bookkeeping, not records.
                    continue
                kind = record.get("fp")
                if kind not in ("meta", "ckpt", "event"):
                    skipped += 1
                    continue
                scope = (shard, int(record.get("run", 0)))
                run = runs.get(scope)
                if run is None:
                    run = runs[scope] = FingerprintRun(scope)
                    order.append(scope)
                if kind == "meta":
                    run.meta = record
                elif kind == "ckpt":
                    run.checkpoints.append(record)
                else:
                    run.events.append(record)
    for run in runs.values():
        run.checkpoints.sort(key=lambda record: int(record.get("i", 0)))
        run.events.sort(key=lambda record: int(record.get("i", 0)))
    return FingerprintLoad(
        runs=[runs[scope] for scope in order], paths=paths, skipped=skipped
    )
