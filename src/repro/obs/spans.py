"""Offline span reconstruction from correlation-stamped traces.

The protocol layers stamp every trace event with whichever correlation
keys apply (``query_id``, ``response_id``, ``round``, ``chunk_id``,
``consumer``, ``hop`` — see :mod:`repro.obs.trace`).  This module folds a
possibly *sharded* JSONL trace back into typed span trees:

* a :class:`QuerySpan` per issued query (PDD / CDI / MDR) collecting its
  forwards, Bloom prunes, responses and lingering-table life cycle into a
  per-query discovery timeline;
* a :class:`QuerySpan` per chunk request carrying the recursive division
  tree (``root``/``parent`` ids stamped by
  :meth:`repro.core.messages.ChunkQuery.divided`) as ``children``.

Sharding realities the loader absorbs:

* ``--jobs N`` campaigns write per-worker shards ``trace.0.jsonl``,
  ``trace.1.jsonl``, ... next to the requested path — the loader accepts
  a single file, a directory, or a glob and merges events by timestamp;
* message ids and run ids come from per-process counters that forked
  workers inherit, so ids collide *across* shards — spans are therefore
  scoped per ``(shard, run)`` and never merged across that boundary;
* a worker killed mid-write leaves a truncated final line — skipped and
  counted, never fatal;
* retry-once crash isolation can replay a trial, duplicating its events —
  exact duplicate lines within one shard are dropped and counted.
"""

from __future__ import annotations

import glob as _glob
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

Event = Dict[str, object]

#: Scope inside which message/run ids are unique: (shard label, run id).
ScopeKey = Tuple[str, int]

#: Event kinds that reference the governing query via ``query_id``.
_QUERY_EVENT_KINDS = (
    "query_forwarded",
    "bloom_prune",
    "response_sent",
    "chunk_served",
    "lqt_linger",
    "lqt_expire",
    "chunk_assignment",
    "frame_sent",
    "frame_delivered",
    "frame_lost",
    "frame_dropped",
    "retransmit",
    "abandon",
)


# ----------------------------------------------------------------------
# Loading (single file, directory, glob; shard-aware)
# ----------------------------------------------------------------------
def resolve_trace_paths(path: str) -> List[str]:
    """Expand ``path`` into the concrete trace files it names.

    Accepts a plain file, a directory (all ``*.jsonl`` inside), or a glob
    pattern.  A plain file with per-worker shards (``<stem>.0<ext>``,
    ``<stem>.1<ext>``, ...) next to it resolves to the file plus its
    shards — after a ``--jobs N`` run the parent's own file exists but is
    empty (workers write the shards), so ``repro inspect trace.jsonl``
    keeps working unchanged.

    Raises:
        FileNotFoundError: when nothing matches.
    """
    if _glob.has_magic(path):
        matches = sorted(p for p in _glob.glob(path) if os.path.isfile(p))
        if not matches:
            raise FileNotFoundError(f"no trace files match {path!r}")
        return matches
    if os.path.isdir(path):
        matches = sorted(
            os.path.join(path, name)
            for name in os.listdir(path)
            if name.endswith(".jsonl")
        )
        if not matches:
            raise FileNotFoundError(f"no *.jsonl trace files in {path!r}")
        return matches
    stem, ext = os.path.splitext(path)
    shards = sorted(
        _glob.glob(f"{_glob.escape(stem)}.[0-9]*{_glob.escape(ext)}"),
        key=_shard_sort_key,
    )
    if os.path.isfile(path):
        return [path] + shards if shards else [path]
    if shards:
        return shards
    raise FileNotFoundError(f"no such trace file: {path}")


def _shard_sort_key(path: str) -> Tuple[int, str]:
    stem = os.path.splitext(path)[0]
    suffix = stem.rsplit(".", 1)[-1]
    return (int(suffix), path) if suffix.isdigit() else (1 << 30, path)


@dataclass
class TraceLoad:
    """A merged, shard-tagged event stream plus loader diagnostics."""

    events: List[Event]
    paths: List[str]
    skipped_lines: int = 0
    duplicates_dropped: int = 0


def load_trace(path: str) -> TraceLoad:
    """Load and merge the trace file(s) named by ``path``.

    Every event gains a ``shard`` field (the source file's basename) so
    downstream grouping can scope colliding run/message ids.  Events are
    merged across shards in timestamp order (stable: ties keep each
    shard's original write order).  Unparseable lines are skipped and
    counted; exact duplicate lines within one shard are dropped.
    """
    paths = resolve_trace_paths(path)
    events: List[Event] = []
    skipped = 0
    duplicates = 0
    for file_path in paths:
        shard = os.path.basename(file_path)
        seen_lines: set = set()
        with open(file_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                if line in seen_lines:
                    duplicates += 1
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                if not isinstance(event, dict):
                    skipped += 1
                    continue
                if "provenance" in event:
                    # The file-header provenance record (version, scheduler,
                    # fingerprint config) — expected, not a skipped line.
                    continue
                if "attempt" in event:
                    # Attempt commit/abort marker from the parallel runner
                    # (normally stripped by post-campaign sanitization, but
                    # a killed parent can leave them) — not an event.
                    continue
                seen_lines.add(line)
                event["shard"] = shard
                events.append(event)
    events.sort(key=lambda e: float(e.get("t", 0.0)))
    return TraceLoad(
        events=events,
        paths=paths,
        skipped_lines=skipped,
        duplicates_dropped=duplicates,
    )


def scope_of(event: Event) -> ScopeKey:
    """The ``(shard, run)`` scope an event's ids are unique within."""
    return (str(event.get("shard", "")), int(event.get("run", 0)))


# ----------------------------------------------------------------------
# Span model
# ----------------------------------------------------------------------
@dataclass
class QuerySpan:
    """One query's reconstructed causal timeline.

    For chunk queries, ``children`` holds the sub-queries the recursive
    division minted (``parent``/``root`` stamped on ``chunk_request``
    events); for discovery/CDI/MDR queries it stays empty.
    """

    scope: ScopeKey
    query_id: int
    proto: str
    consumer: Optional[int] = None
    round: Optional[int] = None
    issued_at: Optional[float] = None
    expires_at: Optional[float] = None
    item: Optional[str] = None
    root_id: Optional[int] = None
    parent_id: Optional[int] = None
    events: List[Event] = field(default_factory=list)
    children: List["QuerySpan"] = field(default_factory=list)

    @property
    def start(self) -> float:
        if self.issued_at is not None:
            return self.issued_at
        return min((float(e["t"]) for e in self.events), default=0.0)

    @property
    def end(self) -> float:
        return max((float(e["t"]) for e in self.events), default=self.start)

    def count(self, kind: str) -> int:
        """How many attached events are of ``kind``."""
        return sum(1 for e in self.events if e.get("kind") == kind)

    def tree_size(self) -> int:
        """Spans in this division tree (this span + all descendants)."""
        return 1 + sum(child.tree_size() for child in self.children)

    def walk(self) -> List["QuerySpan"]:
        """This span followed by its descendants, depth-first."""
        nodes = [self]
        for child in self.children:
            nodes.extend(child.walk())
        return nodes


@dataclass
class SpanForest:
    """All span trees of a trace, plus events nothing claimed."""

    queries: List[QuerySpan]
    orphans: List[Event]

    def roots(self) -> List[QuerySpan]:
        """Spans that are not a child of another span."""
        return [s for s in self.queries if s.parent_id is None]

    def by_proto(self, proto: str) -> List[QuerySpan]:
        return [s for s in self.queries if s.proto == proto]


def build_spans(events: Sequence[Event]) -> SpanForest:
    """Fold a (shard-tagged) event stream into per-query span trees.

    Two passes: the first creates a :class:`QuerySpan` for every
    ``query_issued`` and ``chunk_request`` event; the second attaches all
    correlated events — so out-of-order shard interleavings (an event
    timestamped before its query's issue record lands first after the
    merge) cannot orphan events that do have a span.
    """
    spans: Dict[Tuple[str, int, int], QuerySpan] = {}
    orphans: List[Event] = []

    for event in events:
        kind = event.get("kind")
        if kind == "query_issued":
            scope = scope_of(event)
            query_id = int(event["query_id"])
            span = spans.get(scope + (query_id,))
            if span is None:
                span = QuerySpan(
                    scope=scope, query_id=query_id, proto=str(event.get("proto", "?"))
                )
                spans[scope + (query_id,)] = span
            span.proto = str(event.get("proto", span.proto))
            span.consumer = _opt_int(event.get("consumer"), span.consumer)
            span.round = _opt_int(event.get("round"), span.round)
            span.issued_at = float(event["t"])
            span.expires_at = _opt_float(event.get("expires_at"), span.expires_at)
            span.item = event.get("item", span.item)  # type: ignore[assignment]
        elif kind == "chunk_request":
            scope = scope_of(event)
            query_id = int(event["query_id"])
            span = spans.get(scope + (query_id,))
            if span is None:
                span = QuerySpan(scope=scope, query_id=query_id, proto="chunk")
                spans[scope + (query_id,)] = span
            span.proto = "chunk"
            span.consumer = _opt_int(event.get("consumer"), span.consumer)
            span.issued_at = float(event["t"])
            span.expires_at = _opt_float(event.get("expires_at"), span.expires_at)
            span.item = event.get("item", span.item)  # type: ignore[assignment]
            span.root_id = _opt_int(event.get("root"), span.root_id)
            span.parent_id = _opt_int(event.get("parent"), span.parent_id)

    for event in events:
        kind = event.get("kind")
        scope = scope_of(event)
        if kind in ("query_issued", "chunk_request"):
            spans[scope + (int(event["query_id"]),)].events.append(event)
            continue
        attached = False
        query_id = event.get("query_id")
        if query_id is not None:
            span = spans.get(scope + (int(query_id),))
            if span is not None:
                span.events.append(event)
                attached = True
        for qid in event.get("query_ids") or ():
            span = spans.get(scope + (int(qid),))
            if span is not None and event not in span.events[-1:]:
                span.events.append(event)
                attached = True
        if not attached:
            orphans.append(event)

    # Link chunk division trees by the stamped parent ids.
    for span in spans.values():
        if span.parent_id is None:
            continue
        parent = spans.get(span.scope + (span.parent_id,))
        if parent is not None:
            parent.children.append(span)
        else:
            span.parent_id = None  # parent's shard lost: promote to root

    ordered = sorted(spans.values(), key=lambda s: (s.start, s.query_id))
    for span in ordered:
        span.events.sort(key=lambda e: float(e.get("t", 0.0)))
        span.children.sort(key=lambda s: (s.start, s.query_id))
    return SpanForest(queries=ordered, orphans=orphans)


def _opt_int(value: object, default: Optional[int]) -> Optional[int]:
    return int(value) if value is not None else default  # type: ignore[arg-type]


def _opt_float(value: object, default: Optional[float]) -> Optional[float]:
    return float(value) if value is not None else default  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_spans(
    forest: SpanForest, waterfalls: int = 3, max_rows: int = 40
) -> str:
    """Span summary table plus per-query waterfalls for the busiest trees."""
    roots = forest.roots()
    if not roots:
        return "spans: none (no query_issued/chunk_request events in trace)"
    lines: List[str] = []
    lines.append(
        f"spans: {len(forest.queries)} across {len(roots)} root(s); "
        f"{len(forest.orphans)} uncorrelated event(s)"
    )
    lines.append("")
    header = (
        f"  {'query':>8s} {'proto':<6s} {'round':>5s} {'consumer':>8s} "
        f"{'t_start':>9s} {'dur_s':>8s} {'events':>6s} {'tree':>4s}"
    )
    lines.append(header)
    for span in roots[:max_rows]:
        lines.append(
            f"  {span.query_id:>8d} {span.proto:<6s} "
            f"{_fmt_opt(span.round):>5s} {_fmt_opt(span.consumer):>8s} "
            f"{span.start:>9.3f} {span.end - span.start:>8.3f} "
            f"{len(span.events):>6d} {span.tree_size():>4d}"
        )
    if len(roots) > max_rows:
        lines.append(f"  ... {len(roots) - max_rows} more root span(s)")

    busiest = sorted(
        roots, key=lambda s: (-sum(len(n.events) for n in s.walk()), s.query_id)
    )[:waterfalls]
    for span in busiest:
        lines.append("")
        lines.extend(render_waterfall(span))
    return "\n".join(lines)


def render_waterfall(span: QuerySpan, max_events: int = 30) -> List[str]:
    """One query's timeline, offsets relative to its issue time."""
    start = span.start
    title = f"query {span.query_id} ({span.proto}"
    if span.round is not None:
        title += f", round {span.round}"
    if span.consumer is not None:
        title += f", consumer {span.consumer}"
    title += f") — t={start:.3f}s"
    if span.expires_at is not None:
        title += f", expires +{span.expires_at - start:.3f}s"
    lines = [title]
    shown = 0
    for node in span.walk():
        prefix = "  " if node is span else "    "
        if node is not span:
            lines.append(
                f"  └ sub-query {node.query_id} "
                f"({len(node.events)} events)"
            )
        for event in node.events:
            if shown >= max_events:
                lines.append(f"{prefix}... (truncated)")
                return lines
            shown += 1
            lines.append(
                f"{prefix}+{float(event['t']) - start:7.3f}s  "
                f"{str(event.get('kind')):<18s} {_event_detail(event)}"
            )
    return lines


def _event_detail(event: Event) -> str:
    parts = []
    if event.get("node") is not None:
        parts.append(f"node {event['node']}")
    for key in ("hop", "hits", "misses", "entries", "payloads", "pairs",
                "served", "chunks", "neighbor", "retx", "reason", "size"):
        if event.get(key) not in (None, "", []):
            parts.append(f"{key}={event[key]}")
    return " ".join(parts)


def _fmt_opt(value: Optional[int]) -> str:
    return "-" if value is None else str(value)
