"""Kernel hotspot attribution: where the simulator's wall time goes.

The :class:`~repro.sim.simulator.Simulator` dispatch loop fires opaque
callbacks; :class:`RunProfiler <repro.obs.profile.RunProfiler>` can say
how *fast* a run was, but not *why*.  A :class:`KernelProfiler` closes
that gap: while one is active, the dispatch loop wraps every
``event.fire()`` in a ``perf_counter_ns`` delta and reports it here,
attributed to the event's handler function.  Aggregation is designed for
the hot path:

* one accumulator per *handler function* — bound methods collapse onto
  their underlying function via ``__func__``, so the accumulator table
  stays small (one entry per scheduling site, not per event);
* each accumulator is a preallocated two-slot list ``[count, ns]``
  mutated in place — no objects, tuples or strings are built per event;
* names are resolved only at report time: a handler's *subsystem* is
  derived from its module (``repro.net.medium`` → ``net.medium``), its
  display name from ``__qualname__``.

Zero-cost / determinism contract
--------------------------------

With no profiler active the dispatch loop takes its original branch —
the only cost is one ``active_kernel_profiler()`` call per ``run()``,
and event execution is byte-for-byte the code that shipped before the
profiler existed, so profiler-off runs are bit-identical to seed.  With
a profiler active, timing wraps *around* ``event.fire()`` without
touching event order, RNG draws, or virtual time, so profiler-on runs
keep exact output digests; only wall time changes (measured <10% on the
mobility workload).

Exports
-------

Reports come in three shapes: :meth:`KernelProfiler.render` (top-N
hotspot tables for the ``repro profile`` CLI),
:meth:`KernelProfiler.collapsed_stacks` (FlameGraph/speedscope-
compatible collapsed-stack text, one ``frame;frame value`` line per
handler, values in microseconds), and :meth:`KernelProfiler.summary` /
:meth:`KernelProfiler.trial_summary` (flat dicts for campaign columns —
``hot_subsystem`` / ``kernel_share`` in ``as_row()``).

Multi-process campaigns mirror the :class:`RunProfiler` pattern: each
worker runs its own :class:`KernelProfiler` (the parent's fan-out
requests it via :func:`request_profiling` in the worker initializer, or
the ``REPRO_PROFILE`` env knob), ships :meth:`snapshot` back with the
trial result, and the parent folds it into its own profiler with
:meth:`merge_snapshot`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from time import perf_counter_ns
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Collapsed-stack root frame (groups all handlers under one flame base).
FLAME_ROOT = "repro-sim"

#: Subsystem label of the schedulers' sentinel dispatch handlers (see
#: :func:`repro.sim.event.scheduler_profile_key`).  The dispatch loop
#: books per-event peek/pop time under these, so scheduler overhead shows
#: up as its own subsystem instead of hiding in the profiled wall's idle
#: remainder.  Entries under this subsystem carry *dispatch* counts, not
#: fired events, so :attr:`KernelProfiler.events` excludes them — every
#: simulator event would otherwise be counted twice.
SCHEDULER_SUBSYSTEM = "sim.scheduler"


def _subsystem_of(fn: Any) -> str:
    """Subsystem label for a handler function (module-derived)."""
    module = getattr(fn, "__module__", None) or ""
    if module == "repro" or module.startswith("repro."):
        parts = module.split(".")[1:]
        return ".".join(parts[:2]) if parts else "repro"
    return module or "(unknown)"


def _handler_of(fn: Any) -> str:
    """Display name for a handler function."""
    name = getattr(fn, "__qualname__", None)
    if name:
        return name
    return getattr(fn, "__name__", None) or repr(fn)


class KernelProfiler:
    """Per-handler wall-time and count attribution for simulator events.

    Attributes:
        wall_ns: Wall time covered by this profiler's own
            :meth:`activate` spans (merges do **not** add wall — a
            worker's share is judged against *its* wall inside its own
            trial summary, and a parent's wall already covers the spans
            of any profiler nested under it).
    """

    def __init__(self) -> None:
        #: handler function -> [count, ns]; hot-path table (see note()).
        self._acc: Dict[Any, List[int]] = {}
        #: (subsystem, handler) -> [count, ns]; merged-in (name-keyed).
        self._named: Dict[Tuple[str, str], List[int]] = {}
        self.wall_ns: int = 0

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def note(self, callback: Callable[..., Any], ns: int) -> None:
        """Attribute ``ns`` nanoseconds to ``callback``'s handler.

        Called by the simulator dispatch loop once per fired event.
        """
        key = getattr(callback, "__func__", callback)
        acc = self._acc.get(key)
        if acc is None:
            acc = self._acc[key] = [0, 0]
        acc[0] += 1
        acc[1] += ns

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    @contextmanager
    def activate(self) -> Iterator["KernelProfiler"]:
        """Make this the process-wide kernel profiler for the block.

        Nestable: a profiler activated inside another one's span shadows
        it for the duration (the inner block's events are attributed to
        the inner profiler only; fold them upward explicitly with
        :meth:`merge` if the outer view should include them).  The span's
        wall-clock duration is added to :attr:`wall_ns` on exit.
        """
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        start = perf_counter_ns()
        try:
            yield self
        finally:
            self.wall_ns += perf_counter_ns() - start
            _ACTIVE = previous

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def stats(self) -> Dict[Tuple[str, str], Tuple[int, int]]:
        """``(subsystem, handler) -> (count, total_ns)``, names resolved."""
        merged: Dict[Tuple[str, str], List[int]] = {}
        for fn, (count, ns) in self._acc.items():
            key = (_subsystem_of(fn), _handler_of(fn))
            entry = merged.get(key)
            if entry is None:
                entry = merged[key] = [0, 0]
            entry[0] += count
            entry[1] += ns
        for key, (count, ns) in self._named.items():
            entry = merged.get(key)
            if entry is None:
                entry = merged[key] = [0, 0]
            entry[0] += count
            entry[1] += ns
        return {key: (value[0], value[1]) for key, value in merged.items()}

    def subsystem_totals(self) -> Dict[str, Tuple[int, int]]:
        """``subsystem -> (count, total_ns)`` roll-up of :meth:`stats`."""
        totals: Dict[str, List[int]] = {}
        for (subsystem, _), (count, ns) in self.stats().items():
            entry = totals.get(subsystem)
            if entry is None:
                entry = totals[subsystem] = [0, 0]
            entry[0] += count
            entry[1] += ns
        return {name: (value[0], value[1]) for name, value in totals.items()}

    @property
    def events(self) -> int:
        """Total events attributed so far (scheduler dispatches excluded)."""
        return sum(
            count
            for (subsystem, _), (count, _) in self.stats().items()
            if subsystem != SCHEDULER_SUBSYSTEM
        )

    @property
    def kernel_ns(self) -> int:
        """Total nanoseconds spent inside event handlers."""
        return sum(ns for _, ns in self.stats().values())

    # ------------------------------------------------------------------
    # Merging (worker -> parent, trial -> campaign)
    # ------------------------------------------------------------------
    def merge(self, other: "KernelProfiler") -> None:
        """Fold another profiler's handler stats into this one.

        Wall time is *not* folded — see :attr:`wall_ns`.
        """
        self._merge_stats(other.stats())

    def snapshot(self) -> Dict[str, object]:
        """Picklable/JSON-able form for cross-process return values."""
        return {
            "wall_ns": self.wall_ns,
            "handlers": [
                [subsystem, handler, count, ns]
                for (subsystem, handler), (count, ns) in sorted(self.stats().items())
            ],
        }

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` dict (e.g. one a worker returned)."""
        self._merge_stats(
            {
                (str(subsystem), str(handler)): (int(count), int(ns))
                for subsystem, handler, count, ns in snapshot.get("handlers", [])
            }
        )

    def _merge_stats(
        self, stats: Dict[Tuple[str, str], Tuple[int, int]]
    ) -> None:
        for key, (count, ns) in stats.items():
            entry = self._named.get(key)
            if entry is None:
                entry = self._named[key] = [0, 0]
            entry[0] += count
            entry[1] += ns

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Flat roll-up: totals, share of profiled wall, hottest entries.

        ``events`` counts fired handler events; ``kernel_s`` /
        ``kernel_share`` cover handler time *plus* scheduler dispatch time
        (the ``sim.scheduler`` pseudo-subsystem), so the share reflects
        everything the kernel does per event.
        """
        stats = self.stats()
        events = sum(
            count
            for (subsystem, _), (count, _) in stats.items()
            if subsystem != SCHEDULER_SUBSYSTEM
        )
        kernel_ns = sum(ns for _, ns in stats.values())
        subsystems = self.subsystem_totals()
        hot_subsystem = ""
        hot_handler = ""
        if subsystems:
            hot_subsystem = max(subsystems, key=lambda name: subsystems[name][1])
        if stats:
            hot_key = max(stats, key=lambda key: stats[key][1])
            hot_handler = f"{hot_key[0]}:{hot_key[1]}"
        return {
            "events": events,
            "kernel_s": kernel_ns / 1e9,
            "wall_s": self.wall_ns / 1e9,
            "kernel_share": (
                kernel_ns / self.wall_ns if self.wall_ns > 0 else 0.0
            ),
            "hot_subsystem": hot_subsystem,
            "hot_handler": hot_handler,
        }

    def trial_summary(self) -> Dict[str, object]:
        """Per-trial dict for ``TrialMetrics.extras["profile"]``.

        Carries per-subsystem nanoseconds so campaign aggregation can
        recompute the hottest subsystem over *all* trials rather than
        voting per trial.
        """
        summary = self.summary()
        summary["subsystem_ns"] = {
            name: ns for name, (_, ns) in sorted(self.subsystem_totals().items())
        }
        return summary

    def render(self, top: int = 15) -> str:
        """Hotspot tables: per-subsystem shares, then top-N handlers."""
        stats = self.stats()
        if not stats:
            return "kernel profile: no events attributed"
        kernel_ns = sum(ns for _, ns in stats.values())
        events = sum(
            count
            for (subsystem, _), (count, _) in stats.items()
            if subsystem != SCHEDULER_SUBSYSTEM
        )
        lines = [
            f"kernel profile: {events} events, "
            f"{kernel_ns / 1e9:.3f}s in handlers + scheduler"
            + (
                f" ({kernel_ns / self.wall_ns:.1%} of {self.wall_ns / 1e9:.3f}s "
                f"profiled wall)"
                if self.wall_ns > 0
                else ""
            )
        ]
        lines.append("by subsystem:")
        subsystems = sorted(
            self.subsystem_totals().items(), key=lambda item: -item[1][1]
        )
        for name, (count, ns) in subsystems:
            share = ns / kernel_ns if kernel_ns else 0.0
            lines.append(
                f"  {name:<18s} {share:>6.1%}  {ns / 1e9:>9.3f}s  "
                f"{count:>9d} events"
            )
        ranked = sorted(stats.items(), key=lambda item: -item[1][1])[:top]
        lines.append(
            f"by handler (top {len(ranked)} of {len(stats)} by total time):"
        )
        cumulative = 0
        for (subsystem, handler), (count, ns) in ranked:
            cumulative += ns
            share = ns / kernel_ns if kernel_ns else 0.0
            cum_share = cumulative / kernel_ns if kernel_ns else 0.0
            mean_us = ns / count / 1e3 if count else 0.0
            lines.append(
                f"  {share:>6.1%} {cum_share:>6.1%}  {ns / 1e9:>8.3f}s  "
                f"{mean_us:>8.1f}us/ev  {count:>9d}  "
                f"{subsystem}:{handler}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Flamegraph export
    # ------------------------------------------------------------------
    def collapsed_stacks(self) -> str:
        """Collapsed-stack text (``frame;frame value``, values in µs).

        The format FlameGraph's ``flamegraph.pl`` and speedscope's
        "collapsed stacks" importer both read.  Stacks are the semantic
        dispatch hierarchy — root; subsystem; handler — plus one
        ``(outside-handlers)`` frame covering profiled wall time spent
        outside event handlers (queue management, scenario setup,
        result aggregation), so the flame's total width is the wall.
        """
        stats = self.stats()
        lines = []
        for (subsystem, handler), (_, ns) in sorted(stats.items()):
            if ns <= 0:
                continue
            lines.append(
                f"{FLAME_ROOT};{subsystem};{handler} {max(1, ns // 1000)}"
            )
        kernel_ns = sum(ns for _, ns in stats.values())
        idle_ns = self.wall_ns - kernel_ns
        if idle_ns > 0:
            lines.append(f"{FLAME_ROOT};(outside-handlers) {idle_ns // 1000}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_flamegraph(self, path: str) -> str:
        """Write :meth:`collapsed_stacks` to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.collapsed_stacks())
        return str(path)


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------
_ACTIVE: Optional[KernelProfiler] = None

#: Set in worker processes whose parent campaign requested profiling
#: (travels through the worker initializer, start-method agnostic).
_REQUESTED = False


def active_kernel_profiler() -> Optional[KernelProfiler]:
    """The kernel profiler currently activated, or None."""
    return _ACTIVE


def configured_profiling() -> bool:
    """Whether kernel profiling is requested for trials in this process.

    True when a profiler is active, when a parent campaign requested it
    via :func:`request_profiling`, or when the ``REPRO_PROFILE`` env knob
    is set (how the ``repro profile`` CLI reaches spawned workers).
    """
    return (
        _ACTIVE is not None or _REQUESTED or bool(os.environ.get("REPRO_PROFILE"))
    )


def request_profiling(flag: bool) -> None:
    """Mark this (worker) process as profiling its trials."""
    global _REQUESTED
    _REQUESTED = flag


def _clear_active() -> None:
    """Drop a profiler inherited by a forked worker process."""
    global _ACTIVE
    _ACTIVE = None
