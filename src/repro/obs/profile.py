"""Run profiling: wall-time, event throughput and queue depth per run.

A :class:`RunProfiler` is activated around a block of experiment code
(``with profiler.activate(): ...``).  While active, every
:meth:`Simulator.run() <repro.sim.simulator.Simulator.run>` call reports
its wall-clock duration, processed-event count, final virtual time and
peak event-queue depth here; the experiment runner labels each trial so
the profile reads "seed 3 → 1.2 s wall, 410k events, 340k ev/s".

When no profiler is active the simulator's only cost is one module-level
load and a None check per ``run()`` call.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class RunRecord:
    """One ``Simulator.run()`` call observed by the profiler."""

    label: str
    wall_s: float
    events: int
    sim_time_s: float
    peak_queue_depth: int

    @property
    def events_per_s(self) -> float:
        """Processed events per wall-clock second."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


class RunProfiler:
    """Collects :class:`RunRecord` entries from active simulations."""

    def __init__(self) -> None:
        self.records: List[RunRecord] = []
        self._labels: List[str] = []

    # ------------------------------------------------------------------
    @contextmanager
    def activate(self) -> Iterator["RunProfiler"]:
        """Make this the process-wide profiler for the enclosed block."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous

    @contextmanager
    def label(self, text: str) -> Iterator[None]:
        """Prefix records emitted inside the block (nestable)."""
        self._labels.append(text)
        try:
            yield
        finally:
            self._labels.pop()

    # ------------------------------------------------------------------
    def record_run(
        self,
        wall_s: float,
        events: int,
        sim_time_s: float,
        peak_queue_depth: int,
    ) -> None:
        """Called by the simulator at the end of each ``run()``."""
        self.records.append(
            RunRecord(
                label=" / ".join(self._labels) if self._labels else "run",
                wall_s=wall_s,
                events=events,
                sim_time_s=sim_time_s,
                peak_queue_depth=peak_queue_depth,
            )
        )

    def extend(self, records: Iterable[RunRecord]) -> None:
        """Merge records from another profiler.

        Parallel trial workers each run their own :class:`RunProfiler`
        (labelled with the trial's seed/point) and ship the records back;
        the parent calls this so ``--metrics`` output stays per-trial even
        when the trials ran out-of-process.  :class:`RunRecord` is a frozen
        dataclass, so records pickle across process boundaries unchanged.
        """
        self.records.extend(records)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Aggregate totals over all recorded runs."""
        wall = sum(r.wall_s for r in self.records)
        events = sum(r.events for r in self.records)
        return {
            "runs": len(self.records),
            "wall_s": wall,
            "events": events,
            "events_per_s": events / wall if wall > 0 else 0.0,
            "peak_queue_depth": max(
                (r.peak_queue_depth for r in self.records), default=0
            ),
        }

    def render(self) -> str:
        """Human-readable profile (printed by the CLI under ``--metrics``)."""
        if not self.records:
            return "profile: no simulator runs recorded"
        lines = ["profile:"]
        for record in self.records:
            lines.append(
                f"  {record.label:<28s} wall {record.wall_s:8.3f}s  "
                f"events {record.events:>9d}  "
                f"{record.events_per_s:>10.0f} ev/s  "
                f"sim {record.sim_time_s:8.1f}s  "
                f"peak queue {record.peak_queue_depth}"
            )
        totals = self.summary()
        lines.append(
            f"  {'TOTAL':<28s} wall {totals['wall_s']:8.3f}s  "
            f"events {int(totals['events']):>9d}  "
            f"{totals['events_per_s']:>10.0f} ev/s  "
            f"peak queue {int(totals['peak_queue_depth'])}"
        )
        return "\n".join(lines)


_ACTIVE: Optional[RunProfiler] = None


def active_profiler() -> Optional[RunProfiler]:
    """The profiler currently activated, or None."""
    return _ACTIVE


def _clear_active() -> None:
    """Drop a profiler inherited by a forked worker process."""
    global _ACTIVE
    _ACTIVE = None
