"""Counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a named bag of instruments.  Every simulator
owns one (``sim.metrics``); :class:`repro.net.stats.NetworkStats` registers
its frame counters there, the medium feeds size/latency histograms, and the
round controller records round durations — so one ``registry.render()``
shows the whole run.

Instruments are deliberately primitive: plain attribute arithmetic, no
locks, no labels, no export dependencies.  Getter methods are idempotent
(``registry.counter("x")`` twice returns the same object), which lets
independent layers share instruments by name.

Two facilities support multi-process campaigns (``run_trials(jobs=N)``):

* :meth:`MetricsRegistry.merge_snapshot` folds a :meth:`snapshot` dict —
  e.g. one returned by a worker process — into a live registry;
* :func:`collect_registries` gathers every registry created inside a
  block (each simulator creates one), so a driver can merge them into a
  single campaign-wide view without threading a registry through every
  layer.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

#: Default histogram bucket upper bounds (generic positive magnitudes).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    100.0,
    1_000.0,
    10_000.0,
)


class Counter:
    """A monotonically *usable* counter (direct assignment allowed)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        """Zero the counter in place (holders keep a valid reference)."""
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A sampled value that remembers its extremes.

    When callers pass the current (sim) time to :meth:`set`, the gauge
    also integrates the area under its step curve, so the snapshot can
    report a *time-weighted mean* — for a queue-depth gauge that is the
    average depth over the run, where the unweighted last value only says
    where the queue happened to sit when the run stopped.
    """

    __slots__ = (
        "name",
        "value",
        "max_value",
        "min_value",
        "samples",
        "timed_samples",
        "area",
        "elapsed",
        "_last_set_t",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.max_value: float = 0.0
        self.min_value: float = 0.0
        self.samples: int = 0
        #: How many samples carried a time stamp.  ``twm`` is only an
        #: honest summary when EVERY sample was timed (the integral then
        #: covers the gauge's whole history); render/report paths check
        #: ``timed_samples == samples`` before showing it.
        self.timed_samples: int = 0
        #: Integral of value over time (only grows when ``now`` is given).
        self.area: float = 0.0
        #: Total time covered by the integral.
        self.elapsed: float = 0.0
        self._last_set_t: Optional[float] = None

    def set(self, value: float, now: Optional[float] = None) -> None:
        if self.samples == 0:
            self.max_value = value
            self.min_value = value
        else:
            if value > self.max_value:
                self.max_value = value
            if value < self.min_value:
                self.min_value = value
        if now is not None:
            if self._last_set_t is not None and now > self._last_set_t:
                # The *previous* value held from the last set until now.
                span = now - self._last_set_t
                self.area += self.value * span
                self.elapsed += span
            self._last_set_t = now
            self.timed_samples += 1
        self.value = value
        self.samples += 1

    def time_weighted_mean(self) -> float:
        """Area under the step curve / covered time (0 when untimed)."""
        return self.area / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def twm_valid(self) -> bool:
        """Whether ``time_weighted_mean`` covers every recorded sample.

        False for a never-timed gauge, and — the merge edge case — for a
        gauge whose own samples were untimed but which absorbed a timed
        snapshot via ``merge_snapshot``: its ``elapsed`` is positive, yet
        the integral says nothing about the local untimed samples, so
        reporting its twm would mislead.
        """
        return self.elapsed > 0 and self.timed_samples == self.samples

    def reset(self) -> None:
        """Forget all samples in place (holders keep a valid reference)."""
        self.value = 0.0
        self.max_value = 0.0
        self.min_value = 0.0
        self.samples = 0
        self.timed_samples = 0
        self.area = 0.0
        self.elapsed = 0.0
        self._last_set_t = None

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value}, max={self.max_value})"


class Histogram:
    """Fixed upper-bound buckets plus sum/count/extremes.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets:
            raise ConfigurationError(f"histogram {name!r} needs at least one bucket")
        ordered = tuple(sorted(buckets))
        if len(set(ordered)) != len(ordered):
            raise ConfigurationError(f"histogram {name!r} has duplicate buckets")
        self.name = name
        self.buckets = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.total: float = 0.0
        self.count: int = 0
        self.min: float = 0.0
        self.max: float = 0.0

    def observe(self, value: float) -> None:
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile (upper bound of the q-th bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.max
        return self.max

    def reset(self) -> None:
        """Empty the histogram in place (holders keep a valid reference)."""
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0
        self.min = 0.0
        self.max = 0.0

    def bucket_counts(self) -> Dict[str, int]:
        """Cumulative-free per-bucket counts keyed by upper bound."""
        keyed = {f"le_{bound:g}": n for bound, n in zip(self.buckets, self.counts)}
        keyed["overflow"] = self.counts[-1]
        return keyed

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Named instruments; getters create on first use and are idempotent.

    ``register=False`` keeps the registry out of any open
    :func:`collect_registries` buckets — for scratch registries that fold
    snapshots already visible to the collector (e.g. the serial campaign
    runner snapshotting one trial for the campaign store), where joining
    the bucket would double-count every instrument.
    """

    def __init__(self, register: bool = True) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        if register:
            for bucket in _COLLECTORS:
                bucket.append(self)

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return histogram

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every instrument *in place*.

        Instruments stay registered under their names and objects handed
        out earlier keep working — layers that cached a counter reference
        (e.g. :class:`repro.net.stats.NetworkStats`) keep recording into
        the same, now-zeroed, instrument.
        """
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Nested plain-dict view of everything recorded so far."""
        return {
            "counters": {
                name: counter.value for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: {
                    "value": gauge.value,
                    "max": gauge.max_value,
                    "min": gauge.min_value,
                    "samples": gauge.samples,
                    "timed_samples": gauge.timed_samples,
                    "twm": gauge.time_weighted_mean(),
                    "area": gauge.area,
                    "elapsed": gauge.elapsed,
                }
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": hist.count,
                    "sum": hist.total,
                    "mean": hist.mean,
                    "min": hist.min,
                    "max": hist.max,
                    "p50": hist.quantile(0.5),
                    "p99": hist.quantile(0.99),
                    "buckets": hist.bucket_counts(),
                    "bounds": list(hist.buckets),
                }
                for name, hist in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Counters add; gauges merge their extremes (the merged-in last
        value wins as the current value); histograms add their per-bucket
        counts, which requires both sides to use the same bucket bounds.

        This is how worker processes report back to a parallel campaign:
        each worker snapshots its registries, the parent merges them.

        Raises:
            ConfigurationError: when a histogram in the snapshot uses
                bucket bounds different from the local instrument's.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, data in snapshot.get("gauges", {}).items():
            samples = int(data.get("samples", 1))
            if samples <= 0:
                continue
            gauge = self.gauge(name)
            if gauge.samples == 0:
                gauge.max_value = data["max"]
                gauge.min_value = data["min"]
            else:
                gauge.max_value = max(gauge.max_value, data["max"])
                gauge.min_value = min(gauge.min_value, data["min"])
            gauge.value = data["value"]
            gauge.samples += samples
            # Time-weighted accumulators add across processes (absent in
            # legacy snapshots).
            area = float(data.get("area", 0.0))
            elapsed = float(data.get("elapsed", 0.0))
            gauge.area += area
            gauge.elapsed += elapsed
            # Legacy snapshots lack the timed-sample count; a snapshot
            # with a positive integral came from all-timed sets (the only
            # way the old code grew `elapsed`), an untimed one from none.
            gauge.timed_samples += int(
                data.get("timed_samples", samples if elapsed > 0 else 0)
            )
        for name, data in snapshot.get("histograms", {}).items():
            counts = [
                int(n) for n in data["buckets"].values()
            ]  # insertion order: bounds ascending, then overflow
            if "bounds" in data:
                bounds = tuple(float(b) for b in data["bounds"])
            else:
                # Legacy snapshots only carry %g-formatted key names.
                bounds = tuple(
                    float(key[3:]) for key in data["buckets"] if key != "overflow"
                )
            histogram = self.histogram(name, bounds)
            if histogram.buckets != bounds:
                raise ConfigurationError(
                    f"cannot merge histogram {name!r}: snapshot buckets "
                    f"{bounds} != local buckets {histogram.buckets}"
                )
            incoming = int(data["count"])
            if incoming == 0:
                continue
            if histogram.count == 0:
                histogram.min = data["min"]
                histogram.max = data["max"]
            else:
                histogram.min = min(histogram.min, data["min"])
                histogram.max = max(histogram.max, data["max"])
            for index, n in enumerate(counts):
                histogram.counts[index] += n
            histogram.total += data["sum"]
            histogram.count += incoming

    def render(self) -> str:
        """Human-readable multi-line summary (CLI ``--metrics``)."""
        lines: List[str] = []
        if self._counters:
            lines.append("counters:")
            for name, counter in sorted(self._counters.items()):
                lines.append(f"  {name:<36s} {counter.value}")
        if self._gauges:
            lines.append("gauges:")
            for name, gauge in sorted(self._gauges.items()):
                line = (
                    f"  {name:<36s} {gauge.value:g} (min {gauge.min_value:g}, "
                    f"max {gauge.max_value:g}"
                )
                if gauge.twm_valid:
                    line += f", twm {gauge.time_weighted_mean():g}"
                lines.append(line + ")")
        if self._histograms:
            lines.append("histograms:")
            for name, hist in sorted(self._histograms.items()):
                lines.append(
                    f"  {name:<36s} n={hist.count} mean={hist.mean:.4g} "
                    f"p50={hist.quantile(0.5):g} p99={hist.quantile(0.99):g} "
                    f"max={hist.max:g}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


#: Active collection buckets; every MetricsRegistry created while one is
#: open appends itself (see :func:`collect_registries`).
_COLLECTORS: List[List["MetricsRegistry"]] = []


@contextmanager
def collect_registries() -> Iterator[List["MetricsRegistry"]]:
    """Collect every :class:`MetricsRegistry` created inside the block.

    Used by campaign drivers (CLI ``--metrics``, parallel trial workers)
    to find the registries the simulators create deep inside experiment
    code, so they can be merged into one campaign-wide view::

        with collect_registries() as registries:
            run_experiments()
        merged = MetricsRegistry()
        for registry in registries:
            merged.merge_snapshot(registry.snapshot())

    Nestable; each open block gets its own independent list.
    """
    bucket: List[MetricsRegistry] = []
    _COLLECTORS.append(bucket)
    try:
        yield bucket
    finally:
        _COLLECTORS.remove(bucket)


def _clear_collectors() -> None:
    """Drop collector buckets inherited by a forked worker process."""
    _COLLECTORS.clear()
