"""Observability: structured tracing, metrics and run profiling.

Three complementary views into a running simulation, all designed to cost
(approximately) nothing when switched off:

* :mod:`repro.obs.trace` — a typed event bus the protocol layers publish
  onto (query forwarded, mixedcast merge, Bloom prune, retransmission...),
  with pluggable sinks (in-memory ring buffer, JSONL file writer);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  behind :class:`repro.net.stats.NetworkStats` and the round machinery;
* :mod:`repro.obs.profile` — wall-time / events-per-second / queue-depth
  profiles of whole experiment runs, surfaced by the runner and the CLI.

:mod:`repro.obs.inspect` turns a trace file back into per-node and
per-message-kind summaries (``python -m repro inspect out.jsonl``);
:mod:`repro.obs.spans` reconstructs per-query/per-chunk span trees from
the correlation ids stamped on every event; :mod:`repro.obs.audit`
checks causal protocol invariants over those traces.

:mod:`repro.obs.recorder` is the flight recorder: sim-time sampling of
per-node protocol state into a keyframe+delta JSONL timeline;
:mod:`repro.obs.timeline` reconstructs exact state at any sample time
(``python -m repro inspect tl.jsonl --at 12.5``), diffs instants, and
renders per-node sparkline series.
"""

from repro.obs.audit import AuditReport, Violation, audit_events, audit_extras
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import RunProfiler, RunRecord, active_profiler
from repro.obs.recorder import (
    FlightRecorder,
    RecordingConfig,
    TimelineWriter,
    capture_network_state,
    configured_recording,
    flatten_state,
    install_global_recording,
    recording,
    remove_global_recording,
    unflatten_state,
)
from repro.obs.spans import (
    QuerySpan,
    SpanForest,
    TraceLoad,
    build_spans,
    load_trace,
    resolve_trace_paths,
)
from repro.obs.timeline import (
    TimelineError,
    TimelineLoad,
    TimelineRun,
    diff_between,
    inspect_timeline,
    load_timeline,
    reconstruct_at,
    state_at,
)
from repro.obs.trace import (
    JsonlSink,
    ListSink,
    RingBufferSink,
    TraceBus,
    TraceEvent,
    TraceSink,
    global_sink,
    install_global_sink,
    read_jsonl,
    remove_global_sink,
)

__all__ = [
    "AuditReport",
    "FlightRecorder",
    "QuerySpan",
    "RecordingConfig",
    "SpanForest",
    "TimelineError",
    "TimelineLoad",
    "TimelineRun",
    "TimelineWriter",
    "TraceLoad",
    "Violation",
    "capture_network_state",
    "configured_recording",
    "diff_between",
    "flatten_state",
    "inspect_timeline",
    "install_global_recording",
    "load_timeline",
    "reconstruct_at",
    "recording",
    "remove_global_recording",
    "state_at",
    "unflatten_state",
    "audit_events",
    "audit_extras",
    "build_spans",
    "load_trace",
    "resolve_trace_paths",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunProfiler",
    "RunRecord",
    "active_profiler",
    "JsonlSink",
    "ListSink",
    "RingBufferSink",
    "TraceBus",
    "TraceEvent",
    "TraceSink",
    "global_sink",
    "install_global_sink",
    "read_jsonl",
    "remove_global_sink",
]
