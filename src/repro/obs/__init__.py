"""Observability: structured tracing, metrics and run profiling.

Three complementary views into a running simulation, all designed to cost
(approximately) nothing when switched off:

* :mod:`repro.obs.trace` — a typed event bus the protocol layers publish
  onto (query forwarded, mixedcast merge, Bloom prune, retransmission...),
  with pluggable sinks (in-memory ring buffer, JSONL file writer);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  behind :class:`repro.net.stats.NetworkStats` and the round machinery;
* :mod:`repro.obs.profile` — wall-time / events-per-second / queue-depth
  profiles of whole experiment runs, surfaced by the runner and the CLI.

:mod:`repro.obs.inspect` turns a trace file back into per-node and
per-message-kind summaries (``python -m repro inspect out.jsonl``).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import RunProfiler, RunRecord, active_profiler
from repro.obs.trace import (
    JsonlSink,
    ListSink,
    RingBufferSink,
    TraceBus,
    TraceEvent,
    TraceSink,
    global_sink,
    install_global_sink,
    read_jsonl,
    remove_global_sink,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunProfiler",
    "RunRecord",
    "active_profiler",
    "JsonlSink",
    "ListSink",
    "RingBufferSink",
    "TraceBus",
    "TraceEvent",
    "TraceSink",
    "global_sink",
    "install_global_sink",
    "read_jsonl",
    "remove_global_sink",
]
