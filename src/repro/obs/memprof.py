"""Memory telemetry: tracemalloc snapshots at experiment phase boundaries.

Activated by ``repro profile --memory``, a :class:`MemoryTelemetry`
records a tracemalloc snapshot each time the experiment crosses a phase
boundary — scenario setup, each discovery round, retrieval start — and
attributes the allocation delta between consecutive snapshots to the
``repro`` subsystem (by allocating filename) that grew most.

Instrumentation sites call the module-level :func:`memory_phase` hook,
which is a no-op (one global load and a branch) unless a telemetry object
is active, so the hook can sit on phase boundaries — never inside event
hot paths — without taxing normal runs.  Boundary sites:

* ``repro.experiments.scenario`` — ``"setup"`` once a world is built;
* ``repro.core.rounds`` — ``"round_N_begin"`` / ``"round_N_end"`` per
  discovery round;
* ``repro.core.consumer`` — ``"discovery"`` / ``"retrieval"`` /
  ``"mdr_retrieval"`` when sessions start.

Phases are recorded per process; the parallel runner's workers clear any
inherited telemetry (like they clear profilers), so ``--memory`` implies
single-process campaigns to see the full picture.
"""

from __future__ import annotations

import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


def _subsystem_of_filename(filename: str) -> str:
    """Map an allocating file to a subsystem label.

    ``.../src/repro/net/medium.py`` → ``net.medium``; files outside the
    package collapse to ``(stdlib/other)`` so noise stays in one bucket.
    """
    normalized = filename.replace("\\", "/")
    marker = "/repro/"
    index = normalized.rfind(marker)
    if index < 0:
        return "(stdlib/other)"
    tail = normalized[index + len(marker):]
    parts = [part for part in tail.split("/") if part]
    if not parts:
        return "repro"
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1] or ["repro"]
    return ".".join(parts[:2])


@dataclass
class PhaseRecord:
    """Memory state at one phase boundary.

    Attributes:
        name: Phase label (``setup``, ``round_1_end``, ``retrieval`` ...).
        current_kb: Traced bytes currently allocated, in KiB.
        peak_kb: Peak traced KiB since the previous boundary
            (``tracemalloc.reset_peak`` runs at each boundary).
        growth: Per-subsystem allocation delta since the previous
            boundary as ``(subsystem, delta_kb, delta_blocks)``, largest
            growth first, shrinkers included (negative deltas).
    """

    name: str
    current_kb: float
    peak_kb: float
    growth: List[Tuple[str, float, int]] = field(default_factory=list)


class MemoryTelemetry:
    """Phase-boundary tracemalloc capture with subsystem attribution.

    Args:
        top: How many subsystems to keep per phase delta.
    """

    def __init__(self, top: int = 8) -> None:
        self.top = top
        self.phases: List[PhaseRecord] = []
        self._previous: Optional[tracemalloc.Snapshot] = None
        self._started_tracing = False

    @contextmanager
    def activate(self) -> Iterator["MemoryTelemetry"]:
        """Start tracing and make this the process-wide telemetry."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        self._previous = tracemalloc.take_snapshot()
        tracemalloc.reset_peak()
        try:
            yield self
        finally:
            _ACTIVE = previous
            self._previous = None
            if self._started_tracing and tracemalloc.is_tracing():
                tracemalloc.stop()
                self._started_tracing = False

    def phase(self, name: str) -> PhaseRecord:
        """Record a boundary: snapshot, diff vs the previous one."""
        current_bytes, peak_bytes = tracemalloc.get_traced_memory()
        snapshot = tracemalloc.take_snapshot()
        growth: Dict[str, List[float]] = {}
        if self._previous is not None:
            for diff in snapshot.compare_to(self._previous, "filename"):
                frame = diff.traceback[0] if diff.traceback else None
                filename = frame.filename if frame else ""
                if filename.startswith("<"):
                    continue  # <frozen importlib>, <string>, ...
                subsystem = _subsystem_of_filename(filename)
                entry = growth.setdefault(subsystem, [0.0, 0])
                entry[0] += diff.size_diff
                entry[1] += diff.count_diff
        ranked = sorted(growth.items(), key=lambda item: -abs(item[1][0]))
        record = PhaseRecord(
            name=name,
            current_kb=current_bytes / 1024.0,
            peak_kb=peak_bytes / 1024.0,
            growth=[
                (subsystem, delta_bytes / 1024.0, int(delta_blocks))
                for subsystem, (delta_bytes, delta_blocks) in ranked[: self.top]
            ],
        )
        self.phases.append(record)
        self._previous = snapshot
        tracemalloc.reset_peak()
        return record

    def summary(self) -> Dict[str, object]:
        """Flat roll-up: phase count, peak, hottest allocating subsystem."""
        peak_kb = max((record.peak_kb for record in self.phases), default=0.0)
        totals: Dict[str, float] = {}
        for record in self.phases:
            for subsystem, delta_kb, _ in record.growth:
                if delta_kb > 0:
                    totals[subsystem] = totals.get(subsystem, 0.0) + delta_kb
        hot = max(totals, key=lambda name: totals[name]) if totals else ""
        return {
            "phases": len(self.phases),
            "peak_traced_kb": round(peak_kb, 1),
            "hot_allocator": hot,
        }

    def render(self) -> str:
        """Per-phase table: live/peak KiB plus top allocator deltas."""
        if not self.phases:
            return "memory telemetry: no phase boundaries crossed"
        lines = [f"memory telemetry ({len(self.phases)} phase boundaries):"]
        for record in self.phases:
            lines.append(
                f"  {record.name:<22s} live {record.current_kb:>9.1f} KiB"
                f"  peak {record.peak_kb:>9.1f} KiB"
            )
            for subsystem, delta_kb, delta_blocks in record.growth[:4]:
                sign = "+" if delta_kb >= 0 else ""
                lines.append(
                    f"      {subsystem:<20s} {sign}{delta_kb:>9.1f} KiB"
                    f"  {delta_blocks:+d} blocks"
                )
        return "\n".join(lines)


_ACTIVE: Optional[MemoryTelemetry] = None


def active_memory_telemetry() -> Optional[MemoryTelemetry]:
    """The telemetry currently activated, or None."""
    return _ACTIVE


def memory_phase(name: str) -> None:
    """Record a phase boundary if telemetry is active (else a no-op)."""
    telemetry = _ACTIVE
    if telemetry is not None:
        telemetry.phase(name)


def _clear_active() -> None:
    """Drop telemetry inherited by a forked worker process."""
    global _ACTIVE
    _ACTIVE = None
