"""The shared durable JSONL writer behind trace sinks and timeline files.

Both the trace bus's :class:`~repro.obs.trace.JsonlSink` and the flight
recorder's :class:`~repro.obs.recorder.TimelineWriter` stream one JSON
object per line to a file that must survive three hostile exits:

* **normal interpreter shutdown** — an ``atexit`` hook closes the file;
* **multiprocessing-worker exit** — workers leave through ``os._exit``
  and skip ``atexit``, so an optional ``multiprocessing.util.Finalize``
  closes worker shards (the parallel runner registers one for trace
  shards; timeline writers always register their own);
* **fork** — a writer inherited by a forked child shares the parent's
  file object and buffer, so every close/flush path is pid-guarded: the
  child keeps the reference but never flushes the parent's bytes.

Closing flushes and ``fsync``\\ s so shard tails survive abrupt exits.
This used to be copy-pasted between the two call sites; keep any new
durability rule here so both stay in lockstep.
"""

from __future__ import annotations

import atexit
import json
import multiprocessing.util
import os
import tempfile
from typing import Any, Dict


def repro_version() -> str:
    """The installed package version (metadata first, source as fallback)."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        try:
            return version("repro")
        except PackageNotFoundError:
            pass
    except ImportError:  # pragma: no cover - py<3.8 only
        pass
    from repro import __version__

    return __version__


def provenance_doc() -> Dict[str, Any]:
    """The provenance header every JSONL artifact leads with.

    Records what produced the file — package version, the event-kernel
    scheduler in effect, and the fingerprint configuration (if any) — so a
    shard dug out of a CI artifact months later still says which build and
    which kernel wrote it.  The single ``"provenance"`` marker key is what
    every loader (traces, timelines, fingerprints) skips on.
    """
    from repro.obs.fingerprint import configured_fingerprint
    from repro.sim.scheduler import configured_scheduler

    fp = configured_fingerprint()
    doc: Dict[str, Any] = {
        "provenance": 1,
        "repro_version": repro_version(),
        "scheduler": configured_scheduler(),
    }
    if fp is not None:
        doc["fingerprint"] = {
            "checkpoint_every": fp.checkpoint_every,
            "detail": list(fp.detail) if fp.detail is not None else None,
        }
    return doc


def write_json_atomic(path: str, doc: Dict[str, Any]) -> None:
    """Crash-safely publish one JSON document at ``path``.

    The document is serialized to a temporary file *in the same
    directory* (same filesystem, so the final rename cannot degrade to a
    copy), flushed and ``fsync``\\ ed, then moved into place with
    ``os.replace`` — readers either see the complete old content, the
    complete new content, or nothing, never a truncated tail.  A process
    killed mid-write leaves only a ``*.tmp`` file that readers ignore
    (the campaign store's ``gc`` sweeps them up).
    """
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, separators=(",", ":"), sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class DurableJsonlWriter:
    """Streams JSON documents to a file, one object per line.

    Args:
        path: Target file, truncated on open.
        finalize: Also register a ``multiprocessing.util.Finalize`` so
            the writer closes at worker-process exit.  Callers that
            shard per worker *after* fork (trace sinks) register their
            own finalizer on the shard instead.
        header: Write the provenance header as the file's first line
            (``written`` counts only documents, not the header).

    Attributes:
        path: The file being written.
        written: Number of documents written so far.

    Usable as a context manager; close is idempotent.
    """

    def __init__(
        self, path: str, finalize: bool = False, header: bool = True
    ) -> None:
        self.path = str(path)
        self._file = open(self.path, "w", encoding="utf-8")
        self._pid = os.getpid()
        self.written = 0
        if header:
            self._file.write(
                json.dumps(provenance_doc(), separators=(",", ":")) + "\n"
            )
        atexit.register(self.close)
        if finalize:
            multiprocessing.util.Finalize(self, self.close, exitpriority=10)

    def write_doc(self, doc: Dict[str, Any]) -> None:
        """Append one JSON document as a single line."""
        if self._file is None:
            return
        self._file.write(json.dumps(doc, separators=(",", ":")))
        self._file.write("\n")
        self.written += 1

    def flush(self) -> None:
        if self._file is not None and self._pid == os.getpid():
            self._file.flush()

    def close(self) -> None:
        if self._file is None:
            return
        if self._pid != os.getpid():
            # Inherited across fork: the buffer (and its unflushed bytes)
            # belong to the parent process.  Keep the reference so nothing
            # here ever flushes the parent's bytes a second time.
            return
        file = self._file
        self._file = None
        file.flush()
        os.fsync(file.fileno())
        file.close()
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover - unregister is best-effort
            pass

    def __enter__(self) -> "DurableJsonlWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
