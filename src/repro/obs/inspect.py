"""Trace-file inspection: ``python -m repro inspect out.jsonl``.

Reads the JSONL event stream written by :class:`repro.obs.trace.JsonlSink`
and prints what the protocol actually did: events per kind, the busiest
nodes, on-air frame/byte accounting per message kind (which reconstructs
the paper's message-overhead metric), and loss/retransmission tallies.

The path may also be a directory or a glob — parallel campaigns shard the
trace into per-worker files (``trace.0.jsonl``, ...) which are merged by
timestamp.  ``--spans`` reconstructs per-query span trees
(:mod:`repro.obs.spans`); ``--audit`` checks the causal invariants of
:mod:`repro.obs.audit` and fails the process when any is violated.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.audit import audit_events, render_report
from repro.obs.spans import build_spans, load_trace, render_spans

Event = Dict[str, object]


def summarize(events: Sequence[Event]) -> Dict[str, object]:
    """Aggregate a trace into plain-dict summaries.

    Returns a dict with:
        ``total`` — event count;
        ``runs`` — per-run event counts and time spans;
        ``by_kind`` — events per event kind;
        ``by_node`` — events per node id;
        ``frames`` — per frame-kind ``{"frames": n, "bytes": n}`` from
        ``frame_sent`` events (sums to ``NetworkStats.bytes_sent``);
        ``losses`` — ``frame_lost`` events per reason;
        ``retransmits`` / ``abandons`` — reliability-layer tallies.
    """
    by_kind: Counter = Counter()
    by_node: Counter = Counter()
    losses: Counter = Counter()
    frames: Dict[str, Dict[str, int]] = {}
    runs: Dict[int, Dict[str, object]] = {}
    retransmits = 0
    abandons = 0
    for event in events:
        kind = str(event.get("kind", "?"))
        by_kind[kind] += 1
        node = event.get("node")
        if node is not None:
            by_node[node] += 1
        run = int(event.get("run", 0))
        time = float(event.get("t", 0.0))
        span = runs.setdefault(run, {"events": 0, "t_min": time, "t_max": time})
        span["events"] = int(span["events"]) + 1
        span["t_min"] = min(float(span["t_min"]), time)
        span["t_max"] = max(float(span["t_max"]), time)
        if kind == "frame_sent":
            frame_kind = str(event.get("frame_kind", "data"))
            bucket = frames.setdefault(frame_kind, {"frames": 0, "bytes": 0})
            bucket["frames"] += 1
            bucket["bytes"] += int(event.get("size", 0))
        elif kind == "frame_lost":
            losses[str(event.get("reason", "?"))] += 1
        elif kind == "retransmit":
            retransmits += 1
        elif kind == "abandon":
            abandons += 1
    return {
        "total": len(events),
        "runs": runs,
        "by_kind": dict(by_kind),
        "by_node": dict(by_node),
        "frames": frames,
        "losses": dict(losses),
        "retransmits": retransmits,
        "abandons": abandons,
    }


def render(events: Sequence[Event], top_nodes: int = 10) -> str:
    """Human-readable inspection report for a trace."""
    if not events:
        return "trace: empty (no events)"
    summary = summarize(events)
    lines: List[str] = []
    runs = summary["runs"]
    lines.append(
        f"trace: {summary['total']} events across {len(runs)} simulation run(s)"
    )
    for run_id in sorted(runs):
        span = runs[run_id]
        lines.append(
            f"  run {run_id}: {span['events']} events, "
            f"t = {span['t_min']:.3f}s .. {span['t_max']:.3f}s"
        )

    lines.append("")
    lines.append("events by kind:")
    by_kind = summary["by_kind"]
    for kind in sorted(by_kind, key=lambda k: (-by_kind[k], k)):
        lines.append(f"  {kind:<20s} {by_kind[kind]:>10d}")

    frames = summary["frames"]
    if frames:
        lines.append("")
        lines.append("on-air frames by message kind:")
        total_frames = 0
        total_bytes = 0
        for frame_kind in sorted(frames, key=lambda k: -frames[k]["bytes"]):
            bucket = frames[frame_kind]
            total_frames += bucket["frames"]
            total_bytes += bucket["bytes"]
            lines.append(
                f"  {frame_kind:<20s} {bucket['frames']:>8d} frames "
                f"{bucket['bytes']:>12d} bytes"
            )
        lines.append(
            f"  {'TOTAL':<20s} {total_frames:>8d} frames {total_bytes:>12d} bytes"
        )

    losses = summary["losses"]
    if losses or summary["retransmits"] or summary["abandons"]:
        lines.append("")
        lines.append("reliability:")
        for reason in sorted(losses):
            lines.append(f"  lost ({reason}): {losses[reason]}")
        lines.append(f"  retransmissions: {summary['retransmits']}")
        lines.append(f"  abandoned frames: {summary['abandons']}")

    by_node = summary["by_node"]
    if by_node:
        lines.append("")
        lines.append(f"busiest nodes (top {top_nodes}):")
        ranked = sorted(by_node, key=lambda n: (-by_node[n], n))[:top_nodes]
        for node in ranked:
            lines.append(f"  node {node:<6} {by_node[node]:>10d} events")
    return "\n".join(lines)


def inspect_file(path: str, top_nodes: int = 10) -> str:
    """Load ``path`` (file, directory or glob) and render its report."""
    return inspect_path(path, top_nodes=top_nodes)[1]


def inspect_path(
    path: str,
    top_nodes: int = 10,
    spans: bool = False,
    audit: bool = False,
    as_json: bool = False,
) -> Tuple[int, str]:
    """Full inspection entry point: ``(exit_code, report_text)``.

    The exit code is nonzero only when ``audit`` is requested and at
    least one invariant is violated, so CI can gate on a traced run with
    ``python -m repro inspect trace.jsonl --audit``.
    """
    load = load_trace(path)
    report = audit_events(load.events) if audit else None

    if as_json:
        doc: Dict[str, object] = {
            "paths": load.paths,
            "skipped_lines": load.skipped_lines,
            "duplicates_dropped": load.duplicates_dropped,
            "summary": summarize(load.events),
        }
        if spans:
            forest = build_spans(load.events)
            doc["spans"] = {
                "total": len(forest.queries),
                "roots": len(forest.roots()),
                "orphan_events": len(forest.orphans),
                "by_proto": dict(
                    Counter(span.proto for span in forest.queries)
                ),
                "queries": [
                    {
                        "query_id": span.query_id,
                        "shard": span.scope[0],
                        "run": span.scope[1],
                        "proto": span.proto,
                        "round": span.round,
                        "consumer": span.consumer,
                        "start": span.start,
                        "end": span.end,
                        "events": len(span.events),
                        "tree_size": span.tree_size(),
                    }
                    for span in forest.roots()
                ],
            }
        if report is not None:
            doc["audit"] = report.to_json_dict()
        code = 1 if report is not None and not report.ok else 0
        return code, json.dumps(doc, indent=2, sort_keys=True, default=str)

    sections = [render(load.events, top_nodes=top_nodes)]
    if len(load.paths) > 1 or load.skipped_lines or load.duplicates_dropped:
        sections.append(
            f"loader: {len(load.paths)} shard file(s), "
            f"{load.skipped_lines} unparseable line(s) skipped, "
            f"{load.duplicates_dropped} duplicate line(s) dropped"
        )
    if spans:
        sections.append(render_spans(build_spans(load.events)))
    if report is not None:
        sections.append(render_report(report))
    code = 1 if report is not None and not report.ok else 0
    return code, "\n\n".join(sections)
