"""The flight recorder: sim-time sampling of protocol state (keyframe+delta).

A :class:`FlightRecorder` rides on one scenario and periodically captures a
cheap, side-effect-free snapshot of every node's protocol state (LQT
entries, CDI routes, store occupancy, send/retransmission queues) plus
network-wide state (active transmissions, cumulative airtime, the
neighbor-graph degree distribution).  Samples are taken on a configurable
sim-time interval and *forced* on discovery round boundaries, so the
recording always contains the instants the protocol pivots on.

Encoding
--------

Each nested snapshot is flattened to ``\\x1f``-joined path keys ("columnar"
— one scalar per key).  Every ``keyframe_every``-th sample is written as a
full **keyframe** (``{"rec": "key", "state": {...}}``); samples in between
are compact **deltas** (``{"rec": "delta", "set": {...}, "del": [...]}``).
Records go to a JSONL timeline file that shards per worker exactly like
trace files (``timeline.0.jsonl``, ...), or stay in memory when no path is
configured.  :mod:`repro.obs.timeline` reconstructs exact state at any
sample time from the nearest keyframe plus deltas.

Zero-cost-when-disabled contract
--------------------------------

With no recording configured nothing is scheduled, no state views are
taken, and the simulator hot loop is untouched.  With recording enabled the
sampler only *reads* — every ``observe_state()`` view it calls is
non-mutating (no lazy purges, no trace emissions, no RNG draws) — so
result tables stay bit-identical with the recorder on.

Process-wide activation mirrors the trace-sink registry: install a
:class:`RecordingConfig` via :func:`install_global_recording` (or the
:func:`recording` context manager, or the ``REPRO_TIMELINE`` /
``REPRO_TIMELINE_INTERVAL`` / ``REPRO_TIMELINE_KEYFRAME`` environment
knobs) and every scenario built afterwards attaches a recorder.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.durable import DurableJsonlWriter

#: Path separator inside flattened state keys (ASCII unit separator: it
#: cannot collide with node ids, query ids, or hex item keys).
SEP = "\x1f"

#: Default sim-time seconds between samples.
DEFAULT_INTERVAL_S = 1.0

#: Default keyframe cadence: every K-th sample is a full snapshot.
DEFAULT_KEYFRAME_EVERY = 10


# ----------------------------------------------------------------------
# Flat state codec
# ----------------------------------------------------------------------
def flatten_state(nested: Dict[str, Any]) -> Dict[str, Any]:
    """Flatten a nested str-keyed dict to ``SEP``-joined path keys.

    Empty sub-dicts vanish: the flat form is the canonical representation
    (it carries exactly the scalar leaves), and reconstruction compares
    flat forms.
    """
    flat: Dict[str, Any] = {}
    stack: List[Tuple[str, Dict[str, Any]]] = [("", nested)]
    while stack:
        prefix, mapping = stack.pop()
        for key, value in mapping.items():
            path = key if not prefix else f"{prefix}{SEP}{key}"
            if isinstance(value, dict):
                stack.append((path, value))
            else:
                flat[path] = value
    return flat


def unflatten_state(flat: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild the nested dict form of a flattened state."""
    nested: Dict[str, Any] = {}
    for path, value in flat.items():
        parts = path.split(SEP)
        cursor = nested
        for part in parts[:-1]:
            cursor = cursor.setdefault(part, {})
        cursor[parts[-1]] = value
    return nested


# ----------------------------------------------------------------------
# Timeline writer
# ----------------------------------------------------------------------
class TimelineWriter(DurableJsonlWriter):
    """Streams timeline records to a JSONL file, one object per line.

    All durability rules (flush+fsync on close, ``atexit`` hook, the
    ``multiprocessing.util.Finalize`` for worker exits, pid-guarded close
    under ``fork``) live in
    :class:`~repro.obs.durable.DurableJsonlWriter`.
    """

    def __init__(self, path: str) -> None:
        super().__init__(path, finalize=True)

    def write(self, doc: Dict[str, Any]) -> None:
        self.write_doc(doc)


# ----------------------------------------------------------------------
# Process-wide recording configuration
# ----------------------------------------------------------------------
class RecordingConfig:
    """Where and how densely to record.

    One config is shared by every scenario built while it is active; all
    their recorders append to the same timeline file (records are scoped
    by the simulator's trace run id, exactly like trace events).  With
    ``path=None`` recorders keep their records in memory
    (:attr:`FlightRecorder.records`) — summaries still reach
    ``TrialMetrics.extras``.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        interval_s: float = DEFAULT_INTERVAL_S,
        keyframe_every: int = DEFAULT_KEYFRAME_EVERY,
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError(
                f"recording interval must be positive, got {interval_s!r}"
            )
        if int(keyframe_every) < 1:
            raise ConfigurationError(
                f"keyframe_every must be >= 1, got {keyframe_every!r}"
            )
        self.path = str(path) if path is not None else None
        self.interval_s = float(interval_s)
        self.keyframe_every = int(keyframe_every)
        self._writer: Optional[TimelineWriter] = None

    def writer(self) -> Optional[TimelineWriter]:
        """The shared (lazily opened) timeline writer, or None (memory)."""
        if self.path is None:
            return None
        if self._writer is None:
            self._writer = TimelineWriter(self.path)
        return self._writer

    def current_writer(self) -> Optional[TimelineWriter]:
        """The writer if one is already open; never opens one.

        The parallel runner's attempt markers use this: a marker must
        never force an otherwise-idle worker shard into existence.
        """
        return self._writer

    def reshard(self, index: int) -> None:
        """Re-point a forked worker at its own ``<stem>.<k><ext>`` shard.

        The parent's writer reference (if one was already open) is dropped
        without closing — under fork its buffer is shared with the parent.
        """
        self._writer = None
        if self.path is not None:
            stem, ext = os.path.splitext(self.path)
            self.path = f"{stem}.{index}{ext}"

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None


_GLOBAL_RECORDING: List[RecordingConfig] = []
_ENV_RECORDING: Optional[Tuple[Tuple[str, ...], RecordingConfig]] = None


def install_global_recording(config: RecordingConfig) -> RecordingConfig:
    """Record every scenario built from now on."""
    _GLOBAL_RECORDING.append(config)
    return config


def remove_global_recording(config: RecordingConfig) -> None:
    """Stop recording new scenarios through ``config``."""
    try:
        _GLOBAL_RECORDING.remove(config)
    except ValueError:
        pass


def active_recording() -> Optional[RecordingConfig]:
    """The explicitly installed recording config, if any."""
    return _GLOBAL_RECORDING[-1] if _GLOBAL_RECORDING else None


def _parse_interval(raw: Optional[str]) -> float:
    if not raw:
        return DEFAULT_INTERVAL_S
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_TIMELINE_INTERVAL must be a positive number of sim "
            f"seconds, got {raw!r}"
        ) from None
    if value <= 0:
        raise ConfigurationError(
            f"REPRO_TIMELINE_INTERVAL must be a positive number of sim "
            f"seconds, got {raw!r}"
        )
    return value


def _parse_keyframe(raw: Optional[str]) -> int:
    if not raw:
        return DEFAULT_KEYFRAME_EVERY
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_TIMELINE_KEYFRAME must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(
            f"REPRO_TIMELINE_KEYFRAME must be a positive integer, got {raw!r}"
        )
    return value


def _env_recording() -> Optional[RecordingConfig]:
    global _ENV_RECORDING
    path = os.environ.get("REPRO_TIMELINE")
    if not path:
        return None
    key = (
        path,
        os.environ.get("REPRO_TIMELINE_INTERVAL", ""),
        os.environ.get("REPRO_TIMELINE_KEYFRAME", ""),
    )
    if _ENV_RECORDING is not None and _ENV_RECORDING[0] == key:
        return _ENV_RECORDING[1]
    config = RecordingConfig(
        path=path,
        interval_s=_parse_interval(key[1]),
        keyframe_every=_parse_keyframe(key[2]),
    )
    _ENV_RECORDING = (key, config)
    return config


def configured_recording() -> Optional[RecordingConfig]:
    """The recording in effect: installed config, else ``REPRO_TIMELINE``."""
    config = active_recording()
    if config is not None:
        return config
    return _env_recording()


@contextmanager
def recording(
    path: Optional[str] = None,
    interval_s: float = DEFAULT_INTERVAL_S,
    keyframe_every: int = DEFAULT_KEYFRAME_EVERY,
) -> Iterator[RecordingConfig]:
    """Scope a process-wide recording (used by the CLI and ``timeline=``)."""
    config = install_global_recording(
        RecordingConfig(
            path=path, interval_s=interval_s, keyframe_every=keyframe_every
        )
    )
    try:
        yield config
    finally:
        remove_global_recording(config)
        config.close()


def reshard_for_worker(index: int) -> None:
    """Point this worker process's recording at its own timeline shard.

    Called from the parallel runner's worker initializer (after fork);
    also updates ``REPRO_TIMELINE`` so env-activated recording resolves to
    the shard path for the rest of the worker's life.
    """
    global _ENV_RECORDING
    config = configured_recording()
    if config is None or config.path is None:
        return
    config.reshard(index)
    if os.environ.get("REPRO_TIMELINE"):
        os.environ["REPRO_TIMELINE"] = config.path
        key = (
            config.path,
            os.environ.get("REPRO_TIMELINE_INTERVAL", ""),
            os.environ.get("REPRO_TIMELINE_KEYFRAME", ""),
        )
        _ENV_RECORDING = (key, config)


def recording_shard_base() -> Optional[str]:
    """The timeline path workers would shard, or None (parent-side check)."""
    config = configured_recording()
    return config.path if config is not None else None


# ----------------------------------------------------------------------
# Recorder collection (per-trial summaries)
# ----------------------------------------------------------------------
_RECORDER_COLLECTORS: List[List["FlightRecorder"]] = []


@contextmanager
def collect_recorders() -> Iterator[List["FlightRecorder"]]:
    """Collect every :class:`FlightRecorder` started inside the block.

    The trial runner uses this to find the recorders a trial's scenarios
    attach deep inside experiment code, so their summaries can land on
    ``TrialMetrics.extras["timeline"]``.  Nestable.
    """
    bucket: List[FlightRecorder] = []
    _RECORDER_COLLECTORS.append(bucket)
    try:
        yield bucket
    finally:
        _RECORDER_COLLECTORS.remove(bucket)


def _clear_recorder_collectors() -> None:
    """Drop collector buckets inherited by a forked worker process."""
    _RECORDER_COLLECTORS.clear()


# ----------------------------------------------------------------------
# State capture
# ----------------------------------------------------------------------
def capture_network_state(
    topology: Any, medium: Any, devices: Dict[Any, Any]
) -> Dict[str, Any]:
    """One nested, JSON-ready snapshot of the whole network's state.

    Strictly read-only: composes the ``observe_state()`` views (which
    never purge, emit, or draw randomness) plus the topology's degree
    distribution.  The same function backs both recording and the live
    captures the exactness property test compares against.
    """
    nodes = {
        str(node_id): device.observe_state()
        for node_id, device in devices.items()
        if getattr(device, "alive", True)
    }
    net = medium.observe_state()
    degree: Dict[str, int] = {}
    present = topology.nodes()
    for node_id in present:
        key = str(len(topology.neighbors(node_id)))
        degree[key] = degree.get(key, 0) + 1
    net["nodes"] = len(present)
    net["degree"] = degree
    return {"nodes": nodes, "net": net}


def _is_cdi_key(key: str) -> bool:
    parts = key.split(SEP, 3)
    return len(parts) > 2 and parts[0] == "nodes" and parts[2] == "cdi"


class FlightRecorder:
    """Samples one scenario's state on an interval plus round boundaries.

    Args:
        sim: The scenario's simulator (samples are timestamped with its
            clock and scoped by its trace run id).
        topology / medium / devices: Live references into the scenario —
            the *devices dict itself* is shared with any mobility trace
            player, so joins and leaves show up in later samples.
        writer: Shared :class:`TimelineWriter`, or None to keep records
            in memory (:attr:`records`).
    """

    def __init__(
        self,
        sim: Any,
        topology: Any,
        medium: Any,
        devices: Dict[Any, Any],
        interval_s: float = DEFAULT_INTERVAL_S,
        keyframe_every: int = DEFAULT_KEYFRAME_EVERY,
        writer: Optional[TimelineWriter] = None,
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError(
                f"recording interval must be positive, got {interval_s!r}"
            )
        if int(keyframe_every) < 1:
            raise ConfigurationError(
                f"keyframe_every must be >= 1, got {keyframe_every!r}"
            )
        self.sim = sim
        self.topology = topology
        self.medium = medium
        self.devices = devices
        self.interval_s = float(interval_s)
        self.keyframe_every = int(keyframe_every)
        self._writer = writer
        self.records: List[Dict[str, Any]] = []
        self._prev_flat: Dict[str, Any] = {}
        self._seq = 0
        self._tick_event: Optional[Any] = None
        self._started = False
        # Summary accumulators.
        self.samples = 0
        self.peak_lqt = 0
        self._cdi_last_change: Optional[float] = None
        self._first_t: Optional[float] = None
        self._last_t: float = 0.0
        self._first_airtime = 0.0
        self._last_airtime = 0.0

    # ------------------------------------------------------------------
    def start(self) -> "FlightRecorder":
        """Write the meta record, take sample 0, begin interval sampling."""
        if self._started:
            return self
        self._started = True
        self.sim.recorder = self
        for bucket in _RECORDER_COLLECTORS:
            bucket.append(self)
        self._write(
            {
                "rec": "meta",
                "run": self.sim.trace.run_id,
                "t": self.sim.now,
                "interval": self.interval_s,
                "keyframe_every": self.keyframe_every,
            }
        )
        self.sample(by="start")
        self._tick_event = self.sim.schedule(self.interval_s, self._tick)
        return self

    def stop(self) -> None:
        """Stop sampling (the timeline written so far stays valid)."""
        if not self._started:
            return
        self._started = False
        if getattr(self.sim, "recorder", None) is self:
            self.sim.recorder = None
        if self._tick_event is not None:
            self.sim.cancel(self._tick_event)
            self._tick_event = None

    def _tick(self) -> None:
        self.sample(by="interval")
        self._tick_event = self.sim.schedule(self.interval_s, self._tick)

    def on_round_boundary(self, kind: str, round_index: Optional[int] = None) -> None:
        """Forced sample at a discovery round edge (called by the rounds
        controller through ``sim.recorder``)."""
        self.sample(by=kind, round_index=round_index)

    # ------------------------------------------------------------------
    def sample(
        self, by: str = "manual", round_index: Optional[int] = None
    ) -> Dict[str, Any]:
        """Capture one sample now; returns the record written."""
        now = self.sim.now
        nested = capture_network_state(self.topology, self.medium, self.devices)
        flat = flatten_state(nested)
        doc: Dict[str, Any] = {
            "rec": "key" if self._seq % self.keyframe_every == 0 else "delta",
            "run": self.sim.trace.run_id,
            "seq": self._seq,
            "t": now,
            "by": by,
        }
        if round_index is not None:
            doc["round"] = round_index
        prev = self._prev_flat
        changed = {
            key: value
            for key, value in flat.items()
            if key not in prev or prev[key] != value
        }
        removed = [key for key in prev if key not in flat]
        if doc["rec"] == "key":
            doc["state"] = flat
        else:
            doc["set"] = changed
            doc["del"] = removed
        self._write(doc)

        # Summary accumulators (used for TrialMetrics.extras["timeline"]).
        for state in nested["nodes"].values():
            total = sum(len(table) for table in state["lqt"].values())
            if total > self.peak_lqt:
                self.peak_lqt = total
        if any(_is_cdi_key(key) for key in changed) or any(
            _is_cdi_key(key) for key in removed
        ):
            self._cdi_last_change = now
        airtime = float(nested["net"].get("airtime_s", 0.0))
        if self._first_t is None:
            self._first_t = now
            self._first_airtime = airtime
        self._last_t = now
        self._last_airtime = airtime

        self._prev_flat = flat
        self._seq += 1
        self.samples += 1
        return doc

    def _write(self, doc: Dict[str, Any]) -> None:
        if self._writer is not None:
            self._writer.write(doc)
        else:
            self.records.append(doc)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Series statistics for ``TrialMetrics.extras["timeline"]``.

        ``peak_lqt`` — largest per-node total of live LQT entries seen;
        ``cdi_conv_s`` — sim time of the last observed CDI change (the
        convergence instant; 0 when no CDI state ever appeared);
        ``airtime_util`` — mean channel utilization between the first and
        last sample (cumulative airtime delta / elapsed sim time).
        """
        elapsed = (
            self._last_t - self._first_t if self._first_t is not None else 0.0
        )
        util = (
            (self._last_airtime - self._first_airtime) / elapsed
            if elapsed > 0
            else 0.0
        )
        return {
            "runs": 1,
            "samples": self.samples,
            "elapsed_s": elapsed,
            "peak_lqt": self.peak_lqt,
            "cdi_conv_s": (
                self._cdi_last_change if self._cdi_last_change is not None else 0.0
            ),
            "airtime_util": util,
            "final_t": self._last_t,
        }


def merge_summaries(summaries: List[Dict[str, float]]) -> Dict[str, float]:
    """Fold per-recorder summaries (a trial may build several scenarios)."""
    merged: Dict[str, float] = {
        "runs": 0,
        "samples": 0,
        "elapsed_s": 0.0,
        "peak_lqt": 0,
        "cdi_conv_s": 0.0,
        "airtime_util": 0.0,
        "final_t": 0.0,
    }
    weighted_util = 0.0
    for summary in summaries:
        merged["runs"] += int(summary.get("runs", 1))
        merged["samples"] += int(summary.get("samples", 0))
        elapsed = float(summary.get("elapsed_s", 0.0))
        merged["elapsed_s"] += elapsed
        merged["peak_lqt"] = max(
            merged["peak_lqt"], int(summary.get("peak_lqt", 0))
        )
        merged["cdi_conv_s"] = max(
            merged["cdi_conv_s"], float(summary.get("cdi_conv_s", 0.0))
        )
        merged["final_t"] = max(merged["final_t"], float(summary.get("final_t", 0.0)))
        weighted_util += float(summary.get("airtime_util", 0.0)) * elapsed
    if merged["elapsed_s"] > 0:
        merged["airtime_util"] = weighted_util / merged["elapsed_s"]
    return merged
