#!/usr/bin/env python3
"""Festival video sharing: popular-content retrieval, PDR vs the baseline.

The paper's motivating large-data scenario (§I, §VI-B-3): a memorable
moment was filmed at a music festival and several people already hold
copies.  A newcomer retrieves the 8 MB clip.  We run the retrieval twice
— once with two-phase PDR (chunk-distribution information + recursive
nearest-copy retrieval) and once with the multi-round MDR baseline — and
compare latency and message overhead, reproducing the Figs. 13–14 story
at example scale.

Run:  python examples/festival_video_sharing.py
"""

from __future__ import annotations

import random

from repro import Device, MdrSession, RetrievalSession, RoundConfig, Simulator
from repro.experiments import (
    build_grid_scenario,
    distribute_chunks,
    make_video_item,
)


def retrieve(method: str, redundancy: int, seed: int = 3) -> str:
    scenario = build_grid_scenario(rows=8, cols=8, seed=seed)
    item = make_video_item(8 * 1024 * 1024, name="headliner-encore")
    distribute_chunks(
        scenario.devices,
        item,
        scenario.workload_rng(),
        redundancy=redundancy,
        exclude=scenario.consumers,
    )
    consumer = scenario.device(scenario.consumers[0])
    if method == "pdr":
        session = RetrievalSession(
            consumer, item.descriptor, total_chunks=item.total_chunks
        )
    else:
        session = MdrSession(
            consumer,
            item.descriptor,
            total_chunks=item.total_chunks,
            round_config=RoundConfig(window_s=5.0),
        )
    scenario.sim.schedule(0.0, session.start)
    scenario.sim.run(until=600.0)
    return (
        f"{method.upper()} redundancy={redundancy}: "
        f"{len(session.have)}/{item.total_chunks} chunks, "
        f"latency {session.result.latency:6.1f}s, "
        f"overhead {scenario.stats.bytes_sent / 1e6:6.1f} MB"
    )


def main() -> None:
    print("8 MB clip, 8x8 grid of phones, consumer at the centre\n")
    for redundancy in (1, 4):
        print(retrieve("pdr", redundancy))
        print(retrieve("mdr", redundancy))
        print()
    print(
        "Note the crossover: with one copy the simple multi-round baseline\n"
        "is competitive, but as the clip becomes popular (more copies) PDR's\n"
        "nearest-copy retrieval stays flat while MDR transmits duplicates."
    )


if __name__ == "__main__":
    main()
