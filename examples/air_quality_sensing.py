#!/usr/bin/env python3
"""Crowdsensed air quality: spatio-temporal queries over small data items.

The paper's motivating small-data scenario (§II, §IV): phones in a park
carry NO_x samples; a consumer wants *the samples themselves* (not just
metadata) from a spatial region and time window.  Small-data retrieval
runs the discovery engine with ``want_payload=True`` — responses carry the
sample payloads, cached opportunistically by every node that hears them.

Run:  python examples/air_quality_sensing.py
"""

from __future__ import annotations

import random

from repro import Device, DiscoverySession, Simulator, build_grid, center_subgrid
from repro.data import DataItem, between, eq, make_descriptor
from repro.data.predicate import QuerySpec
from repro.net import BroadcastMedium


def main() -> None:
    sim = Simulator()
    topology, node_ids = build_grid(rows=8, cols=8, radio_range=40.0)
    medium = BroadcastMedium(sim, topology, random.Random(5))
    devices = {
        node_id: Device(sim, medium, node_id, random.Random(500 + node_id))
        for node_id in node_ids
    }

    # Each device took NO_x samples along its stroll through the park.
    rng = random.Random(11)
    sample_count = 300
    matching_ground_truth = 0
    for index in range(sample_count):
        x, y = rng.uniform(0, 200), rng.uniform(0, 200)
        t = rng.uniform(0, 3600)
        descriptor = make_descriptor(
            "env", "nox", time=t, location_x=x, location_y=y
        )
        # A sample is a small single-chunk data item (~2 KB payload).
        item = DataItem(descriptor, size=2048, chunk_size=4096)
        devices[rng.choice(node_ids)].add_item(item)
        if 50 <= x <= 150 and 50 <= y <= 150 and t >= 1800:
            matching_ground_truth += 1

    # The consumer wants recent samples from the park's centre region.
    spec = QuerySpec(
        [
            eq("namespace", "env"),
            eq("data_type", "nox"),
            between("location_x", 50.0, 150.0),
            between("location_y", 50.0, 150.0),
            between("time", 1800.0, 3600.0),
        ]
    )

    consumers = [
        devices[node_id] for node_id in center_subgrid(8, 8, node_ids, sub=3)[:2]
    ]
    sessions = []
    for consumer in consumers:
        session = DiscoverySession(consumer, spec=spec, want_payload=True)
        sessions.append(session)
        sim.schedule(0.0, session.start)
    sim.run(until=90.0)

    print(f"samples matching the query (ground truth): {matching_ground_truth}")
    for session in sessions:
        payload_bytes = sum(c.size for c in session.received_payloads.values())
        print(
            f"consumer {session.device.node_id}: {len(session.received_payloads)} "
            f"samples ({payload_bytes / 1024:.0f} KiB) in "
            f"{session.result.latency:.2f}s, {session.result.rounds} rounds"
        )
    print(f"total message overhead: {medium.stats.bytes_sent / 1e6:.2f} MB")


if __name__ == "__main__":
    main()
