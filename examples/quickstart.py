#!/usr/bin/env python3
"""Quickstart: discover and retrieve data among peer edge devices.

Builds a 5×5 grid of devices, scatters sensor metadata and one shared
video item, then has the centre device (1) discover everything nearby
with PDD and (2) retrieve the video with two-phase PDR.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    Device,
    DiscoverySession,
    RetrievalSession,
    Simulator,
    build_grid,
    center_node,
    make_descriptor,
    make_item,
)
from repro.net import BroadcastMedium


def main() -> None:
    sim = Simulator()
    topology, node_ids = build_grid(rows=5, cols=5, radio_range=40.0)
    medium = BroadcastMedium(sim, topology, random.Random(99))
    devices = {
        node_id: Device(sim, medium, node_id, random.Random(1000 + node_id))
        for node_id in node_ids
    }

    # Producers: every device carries a few sensor samples...
    rng = random.Random(7)
    total_entries = 200
    for index in range(total_entries):
        sample = make_descriptor(
            "env",
            "nox",
            time=float(index),
            location_x=float(index % 50),
            location_y=float(index // 4),
        )
        devices[rng.choice(node_ids)].add_metadata(sample)

    # ...and one of them recorded a 2 MB video clip.
    video = make_item("media", "video", "commencement", size=2 * 1024 * 1024)
    camera_node = node_ids[3]
    devices[camera_node].add_item(video)

    consumer = devices[center_node(5, 5, node_ids)]
    print(f"consumer: node {consumer.node_id}; video producer: node {camera_node}")

    # Phase 1: discover what exists nearby.
    discovery = DiscoverySession(consumer)
    sim.schedule(0.0, discovery.start)
    sim.run(until=60.0)
    print(
        f"PDD: discovered {len(discovery.received)} descriptors "
        f"({len(discovery.received)}/{total_entries + video.total_chunks + 1} incl. video) "
        f"in {discovery.result.latency:.2f}s over {discovery.result.rounds} rounds"
    )

    # Phase 2: retrieve the video from wherever its chunks are.
    retrieval = RetrievalSession(
        consumer, video.descriptor, total_chunks=video.total_chunks
    )
    sim.schedule(0.0, retrieval.start)
    sim.run(until=sim.now + 120.0)
    print(
        f"PDR: fetched {len(retrieval.have)}/{video.total_chunks} chunks "
        f"in {retrieval.result.latency:.2f}s "
        f"(complete: {retrieval.result.completed})"
    )
    print(f"total message overhead: {medium.stats.bytes_sent / 1e6:.2f} MB")


if __name__ == "__main__":
    main()
