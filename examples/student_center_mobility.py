#!/usr/bin/env python3
"""Data discovery in a live student center: mobility, joins and leaves.

Reproduces the paper's mobile scenario (§VI-B-2) at example scale: ~20
people congregate in a 120×120 m student center; every minute someone
joins, someone leaves, and several people wander.  A consumer discovers
all metadata while the population churns around it.

Run:  python examples/student_center_mobility.py
"""

from __future__ import annotations

from repro import DiscoverySession
from repro.experiments import build_campus_scenario, distribute_metadata, generate_metadata
from repro.mobility import STUDENT_CENTER
from repro.net import energy_report


def main() -> None:
    scenario = build_campus_scenario(
        STUDENT_CENTER,
        seed=21,
        frequency_scale=1.0,
        duration_s=180.0,
    )
    trace = scenario.extras["trace"]
    print(
        f"student center: {len(trace.initial_nodes)} people initially, "
        f"{len(trace.joining_nodes)} join later, "
        f"{len(trace.events)} mobility events over {trace.duration_s:.0f}s"
    )

    entries = generate_metadata(1500)
    distribute_metadata(scenario.devices, entries, scenario.workload_rng())

    consumer = scenario.device(scenario.consumers[0])
    session = DiscoverySession(consumer)

    # Let the crowd churn for a while before the consumer asks.
    scenario.sim.schedule(20.0, session.start)
    scenario.sim.run(until=180.0)

    player = scenario.trace_player
    print(
        f"churn applied: {player.joins} joins, {player.leaves} leaves, "
        f"{player.moves} position updates"
    )
    recall = len(session.received) / len(entries)
    print(
        f"consumer {consumer.node_id}: recall {recall:.1%} "
        f"({len(session.received)}/{len(entries)} entries) in "
        f"{session.result.latency:.2f}s over {session.result.rounds} rounds"
    )
    print(f"message overhead: {scenario.stats.bytes_sent / 1e6:.2f} MB")

    report = energy_report(scenario.stats, duration_s=scenario.sim.now)
    print(
        f"energy: {report.total_j:.0f} J total over {report.duration_s:.0f}s "
        f"({report.mean_j:.0f} J/device; idle listening dominates at this "
        f"traffic level — the duty-cycling concern of §VII)"
    )
    busiest = report.top_consumers(1)[0]
    print(f"busiest device: node {busiest[0]} at {busiest[1]:.0f} J")
    print(
        "\nNote: entries held only by people who left before the query are\n"
        "unreachable by design — data walks away with its owner unless a\n"
        "cached copy stayed behind."
    )


if __name__ == "__main__":
    main()
