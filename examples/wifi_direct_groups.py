#!/usr/bin/env python3
"""PDS over Wi-Fi Direct multi-group networks (§V, §VII).

Commodity phones cannot usually join ad hoc networks, so the paper's
deployment story builds multi-hop connectivity from single-hop Wi-Fi
Direct groups interconnected by bridge devices.  This example forms a
2×2 grid of groups, shares data from one corner group, and retrieves it
from the opposite corner — all traffic funnelling through the bridges,
whose load the example reports (the §VII concern).

Run:  python examples/wifi_direct_groups.py
"""

from __future__ import annotations

import random

from repro import Device, DiscoverySession, RetrievalSession, Simulator, make_item
from repro.net import BroadcastMedium, build_wifi_direct_topology, energy_report


def main() -> None:
    rng = random.Random(42)
    layout = build_wifi_direct_topology(
        groups_x=2, groups_y=2, clients_per_group=4, rng=rng
    )
    print(
        f"{len(layout.group_owners)} groups, "
        f"{sum(len(v) for v in layout.clients.values())} clients, "
        f"{len(layout.bridges)} bridges "
        f"({len(layout.topology)} devices total)"
    )

    sim = Simulator()
    medium = BroadcastMedium(sim, layout.topology, random.Random(7))
    devices = {
        node: Device(sim, medium, node, random.Random(900 + node))
        for node in layout.all_nodes()
    }

    # A client in the top-right group filmed a 1 MB clip.
    producer_group = layout.group_owners[-1]
    producer = devices[layout.clients[producer_group][0]]
    clip = make_item("media", "video", "bridge-demo", size=1024 * 1024)
    producer.add_item(clip)

    # A client in the bottom-left group wants it.
    consumer_group = layout.group_owners[0]
    consumer = devices[layout.clients[consumer_group][0]]
    print(
        f"producer: node {producer.node_id} (group {producer_group}); "
        f"consumer: node {consumer.node_id} (group {consumer_group}); "
        f"hop distance: "
        f"{layout.topology.hop_distance(producer.node_id, consumer.node_id)}"
    )

    discovery = DiscoverySession(consumer)
    sim.schedule(0.0, discovery.start)
    sim.run(until=60.0)
    print(
        f"PDD: {len(discovery.received)} descriptors in "
        f"{discovery.result.latency:.2f}s"
    )

    retrieval = RetrievalSession(
        consumer, clip.descriptor, total_chunks=clip.total_chunks
    )
    sim.schedule(0.0, retrieval.start)
    sim.run(until=sim.now + 120.0)
    print(
        f"PDR: {len(retrieval.have)}/{clip.total_chunks} chunks in "
        f"{retrieval.result.latency:.2f}s"
    )

    # The §VII concern: bridges carry the inter-group load.
    report = energy_report(medium.stats, duration_s=sim.now)
    bridge_tx = sum(
        medium.stats.tx_bytes_by_node.get(b, 0) for b in layout.bridges
    )
    print(
        f"bridges transmitted {bridge_tx / 1e6:.2f} MB of "
        f"{medium.stats.bytes_sent / 1e6:.2f} MB total "
        f"({bridge_tx / max(1, medium.stats.bytes_sent):.0%}) — "
        "query/response delivery may need adaptation to avoid overloading "
        "them (§VII)"
    )
    top = report.top_consumers(3)
    roles = {
        node: ("bridge" if node in layout.bridges
               else "owner" if node in layout.group_owners
               else "client")
        for node in layout.all_nodes()
    }
    print("top energy consumers:", [
        f"node {node} ({roles[node]}): {joules:.0f} J" for node, joules in top
    ])


if __name__ == "__main__":
    main()
