#!/usr/bin/env python3
"""Subscribing to data that keeps appearing (§IV's deferred scenario).

During a commencement ceremony, photographers keep capturing new moments.
A subscriber posts ONE standing query; as each new photo's metadata is
produced anywhere in the crowd, it is pushed back along the lingering
query's reverse paths — no polling, no re-flooding (until lease renewal).

Run:  python examples/live_event_subscription.py
"""

from __future__ import annotations

import random

from repro import Device, Simulator, build_grid, center_node, make_descriptor
from repro.core import SubscriptionSession
from repro.data import eq
from repro.data.predicate import QuerySpec
from repro.net import BroadcastMedium


def main() -> None:
    sim = Simulator()
    topology, ids = build_grid(rows=6, cols=6, radio_range=40.0)
    medium = BroadcastMedium(sim, topology, random.Random(3))
    devices = {
        i: Device(sim, medium, i, random.Random(300 + i)) for i in ids
    }
    rng = random.Random(17)

    subscriber = devices[center_node(6, 6, ids)]
    arrivals = []

    def on_photo(descriptor) -> None:
        arrivals.append((sim.now, descriptor))

    session = SubscriptionSession(
        subscriber,
        spec=QuerySpec([eq("namespace", "event"), eq("data_type", "photo")]),
        on_entry=on_photo,
        lease_s=60.0,
    )
    sim.schedule(0.0, session.start)

    # Photographers capture a new photo every few seconds, anywhere.
    photo_count = 30
    for index in range(photo_count):
        when = 2.0 + index * 3.0
        photographer = devices[rng.choice(ids)]
        descriptor = make_descriptor(
            "event", "photo", time=when, location_x=float(index), name=f"shot-{index}"
        )
        sim.schedule(
            when, lambda d=descriptor, p=photographer: p.add_metadata(d)
        )

    sim.run(until=120.0)

    print(f"subscriber: node {subscriber.node_id}; photos taken: {photo_count}")
    print(f"photos delivered: {len(arrivals)} (renewals: {session.renewals})")
    if arrivals:
        delays = []
        for arrived_at, descriptor in arrivals:
            taken_at = descriptor.get("time")
            delays.append(arrived_at - taken_at)
        delays.sort()
        print(
            f"push delay: median {delays[len(delays) // 2]:.2f}s, "
            f"max {delays[-1]:.2f}s after capture"
        )
    print(f"message overhead: {medium.stats.bytes_sent / 1e6:.2f} MB")
    session.stop()


if __name__ == "__main__":
    main()
