"""Legacy setup shim so ``pip install -e .`` works without the wheel package.

All metadata lives in pyproject.toml; this file only enables the legacy
editable-install path in offline environments.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
